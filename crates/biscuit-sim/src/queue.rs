//! Blocking synchronization primitives for fibers.
//!
//! These are the simulation-level building blocks under Biscuit's I/O ports
//! (paper §IV-B "I/O Ports as Bounded Queues"): a condition-style
//! [`WaitQueue`], a bounded [`SimQueue`] with close semantics, and a counting
//! [`Semaphore`]. All of them suspend the calling fiber in *virtual* time.

use std::collections::VecDeque;
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use crate::kernel::{Ctx, Pid};
use crate::metrics::{self, MetricsRegistry};
use crate::trace::{TraceEvent, Tracer};

/// A FIFO list of parked fibers, analogous to a condition variable.
///
/// Always use with a predicate loop: spurious wake-ups are possible (and
/// harmless) when notifications race with re-waits.
#[derive(Debug, Default)]
pub struct WaitQueue {
    waiters: Mutex<VecDeque<(Pid, u64)>>,
}

impl WaitQueue {
    /// Creates an empty wait queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parks the calling fiber until notified.
    pub fn wait(&self, ctx: &Ctx) {
        let gen = ctx.next_park_gen();
        self.waiters.lock().push_back((ctx.pid(), gen));
        ctx.park();
    }

    /// Parks the calling fiber until notified *or* until `deadline`,
    /// whichever comes first. The caller's predicate loop distinguishes
    /// the two by re-checking state and the clock. The fiber's (possibly
    /// stale) registration is removed on wake-up, so a timeout never
    /// swallows a notification aimed at another waiter.
    pub fn wait_deadline(&self, ctx: &Ctx, deadline: crate::time::SimTime) {
        let gen = ctx.next_park_gen();
        let pid = ctx.pid();
        self.waiters.lock().push_back((pid, gen));
        ctx.wake_at(deadline, pid, gen);
        ctx.park();
        self.waiters.lock().retain(|&(p, g)| (p, g) != (pid, gen));
    }

    /// Wakes the longest-waiting fiber, if any.
    pub fn notify_one(&self, ctx: &Ctx) {
        let target = self.waiters.lock().pop_front();
        if let Some((pid, gen)) = target {
            ctx.wake_at_now(pid, gen);
        }
    }

    /// Wakes every waiting fiber.
    pub fn notify_all(&self, ctx: &Ctx) {
        let drained: Vec<_> = self.waiters.lock().drain(..).collect();
        for (pid, gen) in drained {
            ctx.wake_at_now(pid, gen);
        }
    }

    /// Number of fibers currently registered.
    pub fn len(&self) -> usize {
        self.waiters.lock().len()
    }

    /// True if no fiber is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Error returned by [`SimQueue::push`] when the queue has been closed.
///
/// Hands the rejected value back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub struct SendClosedError<T>(pub T);

impl<T> std::fmt::Display for SendClosedError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("queue is closed")
    }
}

impl<T: std::fmt::Debug> std::error::Error for SendClosedError<T> {}

#[derive(Debug)]
struct QueueState<T> {
    buf: VecDeque<T>,
    closed: bool,
}

#[derive(Debug)]
struct QueueInner<T> {
    capacity: usize,
    state: Mutex<QueueState<T>>,
    not_full: WaitQueue,
    not_empty: WaitQueue,
    /// Tracer + label, set at most once via [`SimQueue::set_trace`]. The
    /// `OnceLock` keeps the untraced hot path to a single atomic load.
    trace: OnceLock<(Tracer, Arc<str>)>,
    /// Pre-registered aggregate instruments, set at most once via
    /// [`SimQueue::set_metrics`]; same single-atomic-load hot path.
    metrics: OnceLock<QueueInstruments>,
}

/// Occupancy instruments for one labeled queue (see `docs/METRICS.md`).
#[derive(Debug)]
struct QueueInstruments {
    pushes: metrics::Counter,
    pops: metrics::Counter,
    depth: metrics::Gauge,
}

impl<T> QueueInner<T> {
    #[inline]
    fn trace_depth(&self, ctx: &Ctx, push: bool, depth: usize) {
        if let Some((tracer, label)) = self.trace.get() {
            tracer.emit(|| {
                let at = ctx.now();
                let queue = Arc::clone(label);
                if push {
                    TraceEvent::QueuePush { at, queue, depth }
                } else {
                    TraceEvent::QueuePop { at, queue, depth }
                }
            });
        }
        if let Some(m) = self.metrics.get() {
            if push {
                m.pushes.inc();
            } else {
                m.pops.inc();
            }
            m.depth.set(depth as i64);
        }
    }
}

/// A bounded multi-producer multi-consumer FIFO with close semantics.
///
/// This is the substrate for all three Biscuit port types. Determinism and
/// lock-freedom-in-spirit come from the kernel's one-fiber-at-a-time
/// execution — exactly the property the paper exploits to share queues
/// between SSDlets on the same core without locks.
///
/// # Examples
///
/// ```
/// use biscuit_sim::{Simulation, queue::SimQueue};
///
/// let sim = Simulation::new(0);
/// let q = SimQueue::new(4);
/// let tx = q.clone();
/// sim.spawn("producer", move |ctx| {
///     for i in 0..10 {
///         tx.push(ctx, i).unwrap();
///     }
///     tx.close(ctx);
/// });
/// let rx = q.clone();
/// sim.spawn("consumer", move |ctx| {
///     let mut total = 0;
///     while let Some(v) = rx.pop(ctx) {
///         total += v;
///     }
///     assert_eq!(total, 45);
/// });
/// sim.run().assert_quiescent();
/// ```
#[derive(Debug)]
pub struct SimQueue<T> {
    inner: Arc<QueueInner<T>>,
}

impl<T> Clone for SimQueue<T> {
    fn clone(&self) -> Self {
        SimQueue {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Send> SimQueue<T> {
    /// Creates a queue holding at most `capacity` items.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero (a rendezvous queue is not supported).
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        SimQueue {
            inner: Arc::new(QueueInner {
                capacity,
                state: Mutex::new(QueueState {
                    buf: VecDeque::new(),
                    closed: false,
                }),
                not_full: WaitQueue::new(),
                not_empty: WaitQueue::new(),
                trace: OnceLock::new(),
                metrics: OnceLock::new(),
            }),
        }
    }

    /// Labels this queue and records push/pop depth events into `tracer`.
    /// The first call wins; later calls are ignored.
    pub fn set_trace(&self, tracer: Tracer, label: impl Into<Arc<str>>) {
        let _ = self.inner.trace.set((tracer, label.into()));
    }

    /// Labels this queue and registers occupancy instruments in `registry`:
    /// `queue_pushes_total`, `queue_pops_total`, and the `queue_depth` gauge
    /// (with high-water mark), all labeled `queue=<label>`. The first call
    /// wins; later calls are ignored.
    pub fn set_metrics(&self, registry: &MetricsRegistry, label: &str) {
        let labels = [("queue", label)];
        let _ = self.inner.metrics.set(QueueInstruments {
            pushes: registry.counter("queue_pushes_total", &labels),
            pops: registry.counter("queue_pops_total", &labels),
            depth: registry.gauge("queue_depth", &labels),
        });
    }

    /// Maximum number of buffered items.
    pub fn capacity(&self) -> usize {
        self.inner.capacity
    }

    /// Current number of buffered items.
    pub fn len(&self) -> usize {
        self.inner.state.lock().buf.len()
    }

    /// True if no items are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if the queue has been closed.
    pub fn is_closed(&self) -> bool {
        self.inner.state.lock().closed
    }

    /// Enqueues `v`, blocking in virtual time while the queue is full.
    ///
    /// # Errors
    ///
    /// Returns [`SendClosedError`] carrying `v` back if the queue is closed.
    pub fn push(&self, ctx: &Ctx, v: T) -> Result<(), SendClosedError<T>> {
        loop {
            {
                let mut st = self.inner.state.lock();
                if st.closed {
                    return Err(SendClosedError(v));
                }
                if st.buf.len() < self.inner.capacity {
                    st.buf.push_back(v);
                    let depth = st.buf.len();
                    drop(st);
                    self.inner.trace_depth(ctx, true, depth);
                    self.inner.not_empty.notify_one(ctx);
                    return Ok(());
                }
            }
            self.inner.not_full.wait(ctx);
        }
    }

    /// Attempts to enqueue without blocking.
    ///
    /// # Errors
    ///
    /// Returns `v` back via [`TryPushError`] if the queue is full or closed.
    pub fn try_push(&self, ctx: &Ctx, v: T) -> Result<(), TryPushError<T>> {
        let mut st = self.inner.state.lock();
        if st.closed {
            return Err(TryPushError::Closed(v));
        }
        if st.buf.len() >= self.inner.capacity {
            return Err(TryPushError::Full(v));
        }
        st.buf.push_back(v);
        let depth = st.buf.len();
        drop(st);
        self.inner.trace_depth(ctx, true, depth);
        self.inner.not_empty.notify_one(ctx);
        Ok(())
    }

    /// Dequeues the next item, blocking in virtual time while the queue is
    /// empty. Returns `None` once the queue is closed *and* drained.
    pub fn pop(&self, ctx: &Ctx) -> Option<T> {
        loop {
            {
                let mut st = self.inner.state.lock();
                if let Some(v) = st.buf.pop_front() {
                    let depth = st.buf.len();
                    drop(st);
                    self.inner.trace_depth(ctx, false, depth);
                    self.inner.not_full.notify_one(ctx);
                    return Some(v);
                }
                if st.closed {
                    return None;
                }
            }
            self.inner.not_empty.wait(ctx);
        }
    }

    /// Attempts to dequeue without blocking.
    ///
    /// Returns `Ok(None)` if the queue is closed and drained.
    ///
    /// # Errors
    ///
    /// Returns [`TryPopEmptyError`] if the queue is momentarily empty but not
    /// closed.
    pub fn try_pop(&self, ctx: &Ctx) -> Result<Option<T>, TryPopEmptyError> {
        let mut st = self.inner.state.lock();
        if let Some(v) = st.buf.pop_front() {
            let depth = st.buf.len();
            drop(st);
            self.inner.trace_depth(ctx, false, depth);
            self.inner.not_full.notify_one(ctx);
            return Ok(Some(v));
        }
        if st.closed {
            Ok(None)
        } else {
            Err(TryPopEmptyError)
        }
    }

    /// Dequeues the next item, blocking in virtual time while the queue is
    /// empty, but gives up at absolute time `deadline`. Returns `Ok(None)`
    /// once the queue is closed and drained.
    ///
    /// # Errors
    ///
    /// Returns [`PopTimedOutError`] if nothing arrived by `deadline`.
    pub fn pop_deadline(
        &self,
        ctx: &Ctx,
        deadline: crate::time::SimTime,
    ) -> Result<Option<T>, PopTimedOutError> {
        loop {
            {
                let mut st = self.inner.state.lock();
                if let Some(v) = st.buf.pop_front() {
                    let depth = st.buf.len();
                    drop(st);
                    self.inner.trace_depth(ctx, false, depth);
                    self.inner.not_full.notify_one(ctx);
                    return Ok(Some(v));
                }
                if st.closed {
                    return Ok(None);
                }
            }
            if ctx.now() >= deadline {
                return Err(PopTimedOutError);
            }
            self.inner.not_empty.wait_deadline(ctx, deadline);
        }
    }

    /// Closes the queue: producers start failing, consumers drain what is
    /// left and then observe end-of-stream. Idempotent.
    pub fn close(&self, ctx: &Ctx) {
        let mut st = self.inner.state.lock();
        if !st.closed {
            st.closed = true;
            drop(st);
            self.inner.not_empty.notify_all(ctx);
            self.inner.not_full.notify_all(ctx);
        }
    }
}

/// Error returned by [`SimQueue::try_push`].
#[derive(Debug, PartialEq, Eq)]
pub enum TryPushError<T> {
    /// The queue was at capacity; the value is handed back.
    Full(T),
    /// The queue was closed; the value is handed back.
    Closed(T),
}

impl<T> std::fmt::Display for TryPushError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TryPushError::Full(_) => f.write_str("queue is full"),
            TryPushError::Closed(_) => f.write_str("queue is closed"),
        }
    }
}

impl<T: std::fmt::Debug> std::error::Error for TryPushError<T> {}

/// Error returned by [`SimQueue::pop_deadline`] when the deadline passed
/// with the queue still empty and open.
#[derive(Debug, PartialEq, Eq)]
pub struct PopTimedOutError;

impl std::fmt::Display for PopTimedOutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("queue receive timed out")
    }
}

impl std::error::Error for PopTimedOutError {}

/// Error returned by [`SimQueue::try_pop`] when the queue is empty but open.
#[derive(Debug, PartialEq, Eq)]
pub struct TryPopEmptyError;

impl std::fmt::Display for TryPopEmptyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("queue is empty")
    }
}

impl std::error::Error for TryPopEmptyError {}

/// A counting semaphore over virtual time.
///
/// Used to model bounded concurrency such as NVMe queue depth or the number
/// of outstanding internal flash commands.
#[derive(Debug)]
pub struct Semaphore {
    state: Mutex<usize>,
    waiters: WaitQueue,
}

impl Semaphore {
    /// Creates a semaphore with `permits` initially available.
    pub fn new(permits: usize) -> Self {
        Semaphore {
            state: Mutex::new(permits),
            waiters: WaitQueue::new(),
        }
    }

    /// Acquires one permit, blocking in virtual time until available.
    pub fn acquire(&self, ctx: &Ctx) {
        loop {
            {
                let mut n = self.state.lock();
                if *n > 0 {
                    *n -= 1;
                    return;
                }
            }
            self.waiters.wait(ctx);
        }
    }

    /// Releases one permit and wakes a waiter.
    pub fn release(&self, ctx: &Ctx) {
        *self.state.lock() += 1;
        self.waiters.notify_one(ctx);
    }

    /// Permits currently available.
    pub fn available(&self) -> usize {
        *self.state.lock()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;
    use crate::Simulation;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn fifo_order_preserved() {
        let sim = Simulation::new(0);
        let q = SimQueue::new(3);
        let tx = q.clone();
        sim.spawn("p", move |ctx| {
            for i in 0..100 {
                tx.push(ctx, i).unwrap();
            }
            tx.close(ctx);
        });
        let out = Arc::new(Mutex::new(Vec::new()));
        let o = Arc::clone(&out);
        let rx = q;
        sim.spawn("c", move |ctx| {
            while let Some(v) = rx.pop(ctx) {
                o.lock().push(v);
            }
        });
        sim.run().assert_quiescent();
        assert_eq!(*out.lock(), (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn bounded_capacity_blocks_producer() {
        let sim = Simulation::new(0);
        let q: SimQueue<u32> = SimQueue::new(2);
        let tx = q.clone();
        let hwm = Arc::new(AtomicUsize::new(0));
        let hwm2 = Arc::clone(&hwm);
        let watch = q.clone();
        sim.spawn("p", move |ctx| {
            for i in 0..20 {
                tx.push(ctx, i).unwrap();
                hwm2.fetch_max(watch.len(), Ordering::SeqCst);
            }
            tx.close(ctx);
        });
        let rx = q;
        sim.spawn("c", move |ctx| {
            while rx.pop(ctx).is_some() {
                ctx.sleep(SimDuration::from_micros(1));
            }
        });
        sim.run().assert_quiescent();
        assert!(hwm.load(Ordering::SeqCst) <= 2);
    }

    #[test]
    fn push_after_close_fails() {
        let sim = Simulation::new(0);
        let q: SimQueue<u32> = SimQueue::new(2);
        sim.spawn("p", move |ctx| {
            q.push(ctx, 1).unwrap();
            q.close(ctx);
            assert_eq!(q.push(ctx, 2), Err(SendClosedError(2)));
            assert_eq!(q.pop(ctx), Some(1));
            assert_eq!(q.pop(ctx), None);
        });
        sim.run().assert_quiescent();
    }

    #[test]
    fn multiple_consumers_split_work() {
        // SPMC: every item is delivered exactly once.
        let sim = Simulation::new(0);
        let q = SimQueue::new(4);
        let tx = q.clone();
        sim.spawn("p", move |ctx| {
            for i in 0..50u32 {
                tx.push(ctx, i).unwrap();
            }
            tx.close(ctx);
        });
        let seen = Arc::new(Mutex::new(Vec::new()));
        for c in 0..3 {
            let rx = q.clone();
            let seen = Arc::clone(&seen);
            sim.spawn(format!("c{c}"), move |ctx| {
                while let Some(v) = rx.pop(ctx) {
                    seen.lock().push(v);
                    ctx.sleep(SimDuration::from_micros(c as u64 + 1));
                }
            });
        }
        sim.run().assert_quiescent();
        let mut all = seen.lock().clone();
        all.sort_unstable();
        assert_eq!(all, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn multiple_producers_merge() {
        // MPSC: all items arrive, none duplicated.
        let sim = Simulation::new(0);
        let q = SimQueue::new(4);
        for p in 0..3u32 {
            let tx = q.clone();
            sim.spawn(format!("p{p}"), move |ctx| {
                for i in 0..10 {
                    tx.push(ctx, p * 100 + i).unwrap();
                    ctx.sleep(SimDuration::from_micros(1));
                }
            });
        }
        let done_marker = q.clone();
        sim.spawn("closer", move |ctx| {
            // Close after all producers are done.
            ctx.sleep(SimDuration::from_micros(100));
            done_marker.close(ctx);
        });
        let seen = Arc::new(Mutex::new(Vec::new()));
        let s = Arc::clone(&seen);
        let rx = q;
        sim.spawn("c", move |ctx| {
            while let Some(v) = rx.pop(ctx) {
                s.lock().push(v);
            }
        });
        sim.run().assert_quiescent();
        let mut all = seen.lock().clone();
        all.sort_unstable();
        let mut expect: Vec<u32> = (0..3)
            .flat_map(|p| (0..10).map(move |i| p * 100 + i))
            .collect();
        expect.sort_unstable();
        assert_eq!(all, expect);
    }

    #[test]
    fn try_variants_do_not_block() {
        let sim = Simulation::new(0);
        let q: SimQueue<u32> = SimQueue::new(1);
        sim.spawn("t", move |ctx| {
            assert_eq!(q.try_pop(ctx), Err(TryPopEmptyError));
            q.try_push(ctx, 7).unwrap();
            assert_eq!(q.try_push(ctx, 8), Err(TryPushError::Full(8)));
            assert_eq!(q.try_pop(ctx), Ok(Some(7)));
            q.close(ctx);
            assert_eq!(q.try_push(ctx, 9), Err(TryPushError::Closed(9)));
            assert_eq!(q.try_pop(ctx), Ok(None));
        });
        sim.run().assert_quiescent();
    }

    #[test]
    fn pop_deadline_times_out_then_recovers() {
        let sim = Simulation::new(0);
        let q: SimQueue<u32> = SimQueue::new(2);
        let tx = q.clone();
        sim.spawn("late-producer", move |ctx| {
            ctx.sleep(SimDuration::from_micros(100));
            tx.push(ctx, 7).unwrap();
            tx.close(ctx);
        });
        sim.spawn("consumer", move |ctx| {
            let deadline = ctx.now() + SimDuration::from_micros(10);
            assert_eq!(q.pop_deadline(ctx, deadline), Err(PopTimedOutError));
            assert_eq!(ctx.now().as_micros(), 10, "woke exactly at the deadline");
            let deadline = ctx.now() + SimDuration::from_micros(200);
            assert_eq!(q.pop_deadline(ctx, deadline), Ok(Some(7)));
            assert_eq!(ctx.now().as_micros(), 100);
            assert_eq!(q.pop_deadline(ctx, deadline), Ok(None), "closed + drained");
        });
        sim.run().assert_quiescent();
    }

    #[test]
    fn semaphore_limits_concurrency() {
        let sim = Simulation::new(0);
        let sem = Arc::new(Semaphore::new(2));
        let active = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        for i in 0..8 {
            let sem = Arc::clone(&sem);
            let active = Arc::clone(&active);
            let peak = Arc::clone(&peak);
            sim.spawn(format!("w{i}"), move |ctx| {
                sem.acquire(ctx);
                let a = active.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(a, Ordering::SeqCst);
                ctx.sleep(SimDuration::from_micros(10));
                active.fetch_sub(1, Ordering::SeqCst);
                sem.release(ctx);
            });
        }
        sim.run().assert_quiescent();
        assert_eq!(peak.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn close_wakes_blocked_consumer() {
        let sim = Simulation::new(0);
        let q: SimQueue<u32> = SimQueue::new(1);
        let rx = q.clone();
        let got_none = Arc::new(AtomicUsize::new(0));
        let g = Arc::clone(&got_none);
        sim.spawn("c", move |ctx| {
            assert_eq!(rx.pop(ctx), None);
            g.store(1, Ordering::SeqCst);
        });
        sim.spawn("closer", move |ctx| {
            ctx.sleep(SimDuration::from_micros(5));
            q.close(ctx);
        });
        sim.run().assert_quiescent();
        assert_eq!(got_none.load(Ordering::SeqCst), 1);
    }
}
