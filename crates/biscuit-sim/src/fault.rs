//! Deterministic, seeded fault injection for the simulated SSD stack.
//!
//! A [`FaultPlan`] is a cheaply cloneable handle that instrumented sites
//! across the stack consult before doing work: NAND page senses (read
//! errors with escalating read-retry and uncorrectable-ECC escalation),
//! PCIe/link DMA packets (CRC-detected corruption with replay and
//! exponential backoff), device-core request overhead (stalls), and SSDlet
//! run attempts (panics and hangs). The recovery policies that consume
//! these faults live with the components themselves — the FTL retires bad
//! blocks, the link replays corrupted packets, the runtime restarts
//! panicked SSDlets, and the DB engine falls back to a host-side scan.
//!
//! ## Determinism
//!
//! Every decision derives from `hash(seed, site, ordinal)` where `ordinal`
//! is a per-site counter — never from wall-clock time or the kernel's RNG —
//! so a given seed produces the same faults at the same sites in the same
//! order on every run, and traces/metrics stay byte-identical across
//! repeated runs (`docs/FAULTS.md` has the full reproduction guide).
//!
//! [`FaultPlan::none`] is the always-disabled plan: consulting it is a
//! single `Option` check with **zero** timing side effects, so fault-free
//! runs are bit-identical to runs on a build without fault hooks.
//!
//! ## Observability
//!
//! Every injected, recovered, and failed fault increments the aggregate
//! metrics registry (`fault_injected_total`, `fault_recovered_total`,
//! `fault_failed_total`, labeled by site/action) and emits structured
//! [`TraceEvent::FaultInjected`] / [`TraceEvent::FaultRecovered`] /
//! [`TraceEvent::FaultFailed`] events.
//!
//! ```
//! use biscuit_sim::fault::{FaultConfig, FaultPlan, FaultSite};
//! use biscuit_sim::time::SimTime;
//!
//! let plan = FaultPlan::seeded(7, FaultConfig {
//!     nand_read_error_rate: 1.0,
//!     ..FaultConfig::default()
//! });
//! let f = plan.nand_read_fault().expect("rate 1.0 always fires");
//! assert!(f.retries >= 1);
//! plan.record_injected(SimTime::ZERO, FaultSite::NandRead, "tR retry");
//! plan.record_recovered(SimTime::ZERO, FaultSite::NandRead, "read_retry");
//! assert_eq!(plan.injected_total(), 1);
//! assert_eq!(plan.recovered_total(), 1);
//!
//! let off = FaultPlan::none();
//! assert!(!off.is_active());
//! assert!(off.nand_read_fault().is_none());
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use crate::metrics::MetricsRegistry;
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceEvent, Tracer};

/// Instrumented locations where a [`FaultPlan`] may inject a fault. Each
/// site draws from its own deterministic ordinal stream, so injections at
/// one site never perturb another site's schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// A NAND page sense: read error, read-retry, uncorrectable ECC.
    NandRead,
    /// A host-bound DMA packet on the PCIe/link model.
    LinkToHost,
    /// A device-bound DMA packet on the PCIe/link model.
    LinkToDevice,
    /// A device-core request-overhead charge (core stall).
    CoreStall,
    /// An SSDlet run attempt (panic or hang injection).
    Ssdlet,
    /// A whole drive in a multi-SSD array going silent mid-query (scatter
    /// coordinator site; see `biscuit-host::array`).
    Drive,
    /// A sudden power loss that halts the device at a seeded persistence
    /// operation (an FTL host write or a GC relocation/erase). Volatile
    /// state — the L2P map, open write frontiers, the synth-page cache —
    /// is lost; only NAND contents and the L2P journal survive. Recovery
    /// replays the journal (see `Ftl::recover` in `biscuit-ssd`).
    PowerLoss,
}

const SITE_COUNT: usize = 7;

impl FaultSite {
    /// Stable label used in metrics and trace events.
    pub fn label(self) -> &'static str {
        match self {
            FaultSite::NandRead => "nand_read",
            FaultSite::LinkToHost => "link_to_host",
            FaultSite::LinkToDevice => "link_to_device",
            FaultSite::CoreStall => "core_stall",
            FaultSite::Ssdlet => "ssdlet",
            FaultSite::Drive => "drive",
            FaultSite::PowerLoss => "power_loss",
        }
    }

    fn index(self) -> usize {
        match self {
            FaultSite::NandRead => 0,
            FaultSite::LinkToHost => 1,
            FaultSite::LinkToDevice => 2,
            FaultSite::CoreStall => 3,
            FaultSite::Ssdlet => 4,
            FaultSite::Drive => 5,
            FaultSite::PowerLoss => 6,
        }
    }
}

/// Fault rates and recovery-policy parameters for a seeded [`FaultPlan`].
///
/// The default config injects nothing (all rates zero, no panics or
/// hangs) but carries sensible recovery parameters, so tests can flip on
/// exactly one fault kind with struct-update syntax.
#[derive(Debug, Clone)]
pub struct FaultConfig {
    /// Probability, per NAND page sense, that the read needs retries.
    pub nand_read_error_rate: f64,
    /// Retry budget per faulty read; each retry charges one extra `tR` on
    /// the die. A read that exhausts the budget is uncorrectable.
    pub nand_max_retries: u32,
    /// Conditional probability (given a read error) that retries cannot
    /// correct the page: the full budget is charged and the FTL retires
    /// the block, relocating its valid pages.
    pub nand_uncorrectable_rate: f64,
    /// Probability, per DMA transfer, that the packet is corrupted in
    /// flight (detected by CRC at the receiver).
    pub link_corrupt_rate: f64,
    /// Maximum replay attempts for one corrupted transfer. The plan draws
    /// how many attempts fail (1..=max); the next attempt succeeds.
    pub link_max_replays: u32,
    /// Backoff before the first replay; attempt `k` waits
    /// `base * 2^(k-1)`.
    pub link_backoff_base: SimDuration,
    /// Probability, per request-overhead charge, that a device core stalls.
    pub core_stall_rate: f64,
    /// Duration of one injected core stall.
    pub core_stall: SimDuration,
    /// Number of SSDlet run attempts (across the plan's lifetime) that
    /// panic at entry before any output is produced.
    pub ssdlet_panics: u32,
    /// Number of SSDlet run attempts that hang for [`ssdlet_stall`]
    /// before proceeding, exercising host-side request timeouts.
    ///
    /// [`ssdlet_stall`]: FaultConfig::ssdlet_stall
    pub ssdlet_stalls: u32,
    /// Duration of one injected SSDlet hang.
    pub ssdlet_stall: SimDuration,
    /// How many times the runtime may restart a panicked SSDlet before
    /// marking the application failed.
    pub ssdlet_max_restarts: u32,
    /// Host-side receive timeout for offloaded work. When set, consumers
    /// that support it (the DB engine's NDP drain loop and the array
    /// coordinator's gather loop) give up on a silent device and degrade
    /// gracefully.
    pub host_timeout: Option<SimDuration>,
    /// Number of scattered queries (across the plan's lifetime) that lose
    /// one whole drive mid-flight. The affected shard is drawn
    /// deterministically from the seed; the coordinator detects the silent
    /// drive via [`host_timeout`] and re-scatters its shard to a host-side
    /// Conv scan.
    ///
    /// [`host_timeout`]: FaultConfig::host_timeout
    pub drive_losses: u32,
    /// Where in the query the lost drive goes silent.
    pub drive_loss_phase: DriveLossPhase,
    /// For [`DriveLossPhase::MidGather`]: how many merge items the drive
    /// delivers before dying (it never closes its lane).
    pub drive_loss_items: u64,
    /// Number of sudden power losses (across the plan's lifetime). Each
    /// halts the device at a seeded persistence operation of the phase
    /// selected by [`power_loss_phase`]; the exact operation is drawn
    /// uniformly from `1..=power_loss_window`.
    ///
    /// [`power_loss_phase`]: FaultConfig::power_loss_phase
    pub power_losses: u32,
    /// Which persistence operations are eligible crash instants.
    pub power_loss_phase: PowerLossPhase,
    /// The crash fires at the Nth eligible persistence operation, with N
    /// drawn deterministically from `1..=power_loss_window` (so a window
    /// of 1 crashes at the very first eligible operation).
    pub power_loss_window: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            nand_read_error_rate: 0.0,
            nand_max_retries: 3,
            nand_uncorrectable_rate: 0.0,
            link_corrupt_rate: 0.0,
            link_max_replays: 4,
            link_backoff_base: SimDuration::from_micros(1),
            core_stall_rate: 0.0,
            core_stall: SimDuration::from_micros(50),
            ssdlet_panics: 0,
            ssdlet_stalls: 0,
            ssdlet_stall: SimDuration::from_millis(5),
            ssdlet_max_restarts: 2,
            host_timeout: None,
            drive_losses: 0,
            drive_loss_phase: DriveLossPhase::MidScatter,
            drive_loss_items: 1,
            power_losses: 0,
            power_loss_phase: PowerLossPhase::MidWrite,
            power_loss_window: 256,
        }
    }
}

/// When, within one scattered query, a lost drive goes silent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum DriveLossPhase {
    /// The drive dies before running its shard job: no items, no close.
    #[default]
    MidScatter,
    /// The drive delivers a few items, then silently stops without ever
    /// closing its merge lane.
    MidGather,
}

/// Which FTL persistence operations a power loss may interrupt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PowerLossPhase {
    /// Crash at a host-initiated page write.
    #[default]
    MidWrite,
    /// Crash during garbage collection (a valid-page relocation or the
    /// block erase that follows).
    MidGc,
}

/// A deterministic power-loss instant, consumed once per crash.
///
/// `torn` models where, within the interrupted persistence operation, the
/// power failed: `false` crashes *before* the journal record was appended
/// (the operation never happened), `true` crashes *after* the journal
/// append but *before* the NAND program completed (a torn write that
/// recovery must detect and roll back to the previous mapping).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PowerLossPoint {
    /// True when the crash lands between journal append and NAND program.
    pub torn: bool,
}

/// A deterministic whole-drive loss, consumed once per affected scatter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DriveLoss {
    /// Index of the lost shard (drawn uniformly from the seed).
    pub shard: usize,
    /// When the drive goes silent.
    pub phase: DriveLossPhase,
    /// Items delivered before death ([`DriveLossPhase::MidGather`] only).
    pub items: u64,
}

/// A deterministic NAND read fault, drawn per faulty page sense.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NandReadFault {
    /// Extra `tR` retries charged on the die (1..=`nand_max_retries`).
    pub retries: u32,
    /// True when retries cannot correct the page: the FTL must retire the
    /// block after rescuing its data.
    pub uncorrectable: bool,
}

/// A deterministic SSDlet disruption, consumed once per affected attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SsdletDisruption {
    /// The attempt hangs for the given duration before proceeding.
    Stall(SimDuration),
    /// The attempt panics at entry, before producing any output.
    Panic,
}

#[derive(Debug, Default)]
struct SiteStats {
    injected: AtomicU64,
    recovered: AtomicU64,
    failed: AtomicU64,
}

#[derive(Debug)]
struct PlanInner {
    seed: u64,
    cfg: FaultConfig,
    /// Per-site draw ordinals: the only mutable state feeding decisions.
    ordinals: [AtomicU64; SITE_COUNT],
    stats: [SiteStats; SITE_COUNT],
    panics_left: AtomicU64,
    stalls_left: AtomicU64,
    drive_losses_left: AtomicU64,
    power_losses_left: AtomicU64,
    /// Count of crash-eligible persistence operations seen so far (the
    /// stream the seeded crash instant indexes into).
    power_ops: AtomicU64,
    trace: OnceLock<Tracer>,
    metrics: OnceLock<MetricsRegistry>,
}

/// A seeded, deterministic fault-injection plan shared across the stack.
///
/// Clones share state: draw ordinals and injected/recovered/failed
/// accounting are global to the plan, so attaching one plan to a whole
/// platform (see `Ssd::attach_fault_plan` in `biscuit-core`) yields one
/// coherent, reproducible fault schedule.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    inner: Option<Arc<PlanInner>>,
}

/// SplitMix64 finalizer: a high-quality 64-bit mix.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic draw value for `(seed, site, ordinal)`.
fn mix(seed: u64, site: u64, ordinal: u64) -> u64 {
    splitmix64(splitmix64(seed ^ site.wrapping_mul(0xA076_1D64_78BD_642F)) ^ ordinal)
}

/// Maps a hash to a uniform value in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

impl FaultPlan {
    /// The always-disabled plan: every query is a single `Option` check
    /// with no side effects, so timing is identical to a fault-free build.
    pub fn none() -> Self {
        FaultPlan { inner: None }
    }

    /// A plan that injects per `cfg`, with all randomness derived from
    /// `seed`. The same `(seed, cfg)` always produces the same faults.
    pub fn seeded(seed: u64, cfg: FaultConfig) -> Self {
        let panics = cfg.ssdlet_panics as u64;
        let stalls = cfg.ssdlet_stalls as u64;
        let losses = cfg.drive_losses as u64;
        let power = cfg.power_losses as u64;
        FaultPlan {
            inner: Some(Arc::new(PlanInner {
                seed,
                cfg,
                ordinals: Default::default(),
                stats: Default::default(),
                panics_left: AtomicU64::new(panics),
                stalls_left: AtomicU64::new(stalls),
                drive_losses_left: AtomicU64::new(losses),
                power_losses_left: AtomicU64::new(power),
                power_ops: AtomicU64::new(0),
                trace: OnceLock::new(),
                metrics: OnceLock::new(),
            })),
        }
    }

    /// True when this plan can inject faults (built with
    /// [`FaultPlan::seeded`]).
    pub fn is_active(&self) -> bool {
        self.inner.is_some()
    }

    /// The plan's configuration, when active.
    pub fn config(&self) -> Option<&FaultConfig> {
        self.inner.as_deref().map(|i| &i.cfg)
    }

    /// Records fault trace events into `tracer`. The first call wins; a
    /// no-op on inactive plans.
    pub fn attach_tracer(&self, tracer: &Tracer) {
        if let Some(inner) = &self.inner {
            let _ = inner.trace.set(tracer.clone());
        }
    }

    /// Registers fault counters in `registry` (lazily, per site/action).
    /// The first call wins; a no-op on inactive plans.
    pub fn attach_metrics(&self, registry: &MetricsRegistry) {
        if let Some(inner) = &self.inner {
            let _ = inner.metrics.set(registry.clone());
        }
    }

    /// Advances `site`'s ordinal and returns the draw hash when the event
    /// fires at probability `rate`.
    fn roll(&self, site: FaultSite, rate: f64) -> Option<u64> {
        let inner = self.inner.as_deref()?;
        if rate <= 0.0 {
            return None;
        }
        let n = inner.ordinals[site.index()].fetch_add(1, Ordering::Relaxed);
        let h = mix(inner.seed, site.index() as u64 + 1, n);
        (unit(h) < rate).then(|| splitmix64(h))
    }

    /// Draws the fault (if any) for one NAND page sense.
    pub fn nand_read_fault(&self) -> Option<NandReadFault> {
        let cfg = self.config()?.clone();
        let h = self.roll(FaultSite::NandRead, cfg.nand_read_error_rate)?;
        let max = cfg.nand_max_retries.max(1);
        let uncorrectable = unit(splitmix64(h)) < cfg.nand_uncorrectable_rate;
        let retries = if uncorrectable {
            max
        } else {
            1 + (h % max as u64) as u32
        };
        Some(NandReadFault {
            retries,
            uncorrectable,
        })
    }

    /// Draws how many attempts of one DMA transfer are corrupted in
    /// flight (0 = clean). `site` must be [`FaultSite::LinkToHost`] or
    /// [`FaultSite::LinkToDevice`]. Each corrupted attempt is replayed
    /// after exponential backoff; the attempt after the last corrupted
    /// one succeeds.
    pub fn link_corrupt_attempts(&self, site: FaultSite) -> u32 {
        debug_assert!(matches!(
            site,
            FaultSite::LinkToHost | FaultSite::LinkToDevice
        ));
        let Some(cfg) = self.config() else { return 0 };
        let max = cfg.link_max_replays.max(1);
        match self.roll(site, cfg.link_corrupt_rate) {
            Some(h) => 1 + (h % max as u64) as u32,
            None => 0,
        }
    }

    /// Draws the stall (if any) for one device-core request charge.
    pub fn core_stall(&self) -> Option<SimDuration> {
        let cfg = self.config()?.clone();
        self.roll(FaultSite::CoreStall, cfg.core_stall_rate)?;
        Some(cfg.core_stall)
    }

    /// Consumes and returns the disruption (if any) for one SSDlet run
    /// attempt. Hangs are consumed before panics.
    pub fn ssdlet_disruption(&self) -> Option<SsdletDisruption> {
        let inner = self.inner.as_deref()?;
        // The counters are budgets, not rates: decrement-if-positive.
        if take_one(&inner.stalls_left) {
            return Some(SsdletDisruption::Stall(inner.cfg.ssdlet_stall));
        }
        if take_one(&inner.panics_left) {
            return Some(SsdletDisruption::Panic);
        }
        None
    }

    /// Consumes and returns the whole-drive loss (if any) for one scatter
    /// of a query across `shards` drives. The lost shard index is drawn
    /// deterministically from the seed; the budget
    /// ([`FaultConfig::drive_losses`]) is consumed only when a loss fires.
    pub fn drive_loss(&self, shards: usize) -> Option<DriveLoss> {
        let inner = self.inner.as_deref()?;
        if shards == 0 || !take_one(&inner.drive_losses_left) {
            return None;
        }
        let n = inner.ordinals[FaultSite::Drive.index()].fetch_add(1, Ordering::Relaxed);
        let h = mix(inner.seed, FaultSite::Drive.index() as u64 + 1, n);
        Some(DriveLoss {
            shard: (h % shards as u64) as usize,
            phase: inner.cfg.drive_loss_phase,
            items: inner.cfg.drive_loss_items,
        })
    }

    /// Consumes and returns the power-loss instant (if any) for one FTL
    /// persistence operation. `during_gc` tags the operation's phase
    /// (`true` for GC relocations and erases, `false` for host writes);
    /// only operations matching [`FaultConfig::power_loss_phase`] count
    /// toward the seeded crash instant. The Nth eligible operation
    /// crashes, with N drawn uniformly from
    /// `1..=`[`FaultConfig::power_loss_window`]; with a budget above one,
    /// each subsequent crash re-draws a fresh offset past the previous
    /// instant.
    pub fn power_loss(&self, during_gc: bool) -> Option<PowerLossPoint> {
        let inner = self.inner.as_deref()?;
        let cfg = &inner.cfg;
        if cfg.power_losses == 0 {
            return None;
        }
        let eligible = match cfg.power_loss_phase {
            PowerLossPhase::MidWrite => !during_gc,
            PowerLossPhase::MidGc => during_gc,
        };
        if !eligible {
            return None;
        }
        let n = inner.power_ops.fetch_add(1, Ordering::Relaxed) + 1;
        let window = cfg.power_loss_window.max(1);
        let site = FaultSite::PowerLoss.index() as u64 + 1;
        // The crash instants are a cumulative sum of seeded per-loss
        // offsets, so every loss in the budget lands at a distinct op.
        let fired = cfg.power_losses as u64 - inner.power_losses_left.load(Ordering::Relaxed);
        let target: u64 = (0..=fired)
            .map(|j| 1 + mix(inner.seed, site, j) % window)
            .sum();
        if n != target || !take_one(&inner.power_losses_left) {
            return None;
        }
        Some(PowerLossPoint {
            torn: mix(inner.seed, site, 1 << 32 | fired) & 1 == 1,
        })
    }

    /// Restart budget for panicked SSDlets (0 when inactive).
    pub fn max_restarts(&self) -> u32 {
        self.config().map_or(0, |c| c.ssdlet_max_restarts)
    }

    /// Host-side receive timeout for offloaded work, when configured.
    pub fn host_timeout(&self) -> Option<SimDuration> {
        self.config()?.host_timeout
    }

    /// Records an injected fault: counters, metrics, and a trace event.
    pub fn record_injected(&self, now: SimTime, site: FaultSite, detail: &str) {
        let Some(inner) = self.inner.as_deref() else {
            return;
        };
        inner.stats[site.index()]
            .injected
            .fetch_add(1, Ordering::Relaxed);
        if let Some(reg) = inner.metrics.get() {
            if reg.is_enabled() {
                reg.counter("fault_injected_total", &[("site", site.label())])
                    .inc();
            }
        }
        if let Some(tracer) = inner.trace.get() {
            tracer.emit(|| TraceEvent::FaultInjected {
                at: now,
                site: site.label(),
                detail: Arc::from(detail),
            });
        }
    }

    /// Records a successful recovery (`action` names the policy: e.g.
    /// `"read_retry"`, `"block_retire"`, `"link_replay"`, `"restart"`,
    /// `"host_fallback"`).
    pub fn record_recovered(&self, now: SimTime, site: FaultSite, action: &'static str) {
        let Some(inner) = self.inner.as_deref() else {
            return;
        };
        inner.stats[site.index()]
            .recovered
            .fetch_add(1, Ordering::Relaxed);
        if let Some(reg) = inner.metrics.get() {
            if reg.is_enabled() {
                reg.counter(
                    "fault_recovered_total",
                    &[("site", site.label()), ("action", action)],
                )
                .inc();
            }
        }
        if let Some(tracer) = inner.trace.get() {
            tracer.emit(|| TraceEvent::FaultRecovered {
                at: now,
                site: site.label(),
                action,
            });
        }
    }

    /// Records an exhausted recovery policy (`action` names what gave up);
    /// a higher layer must degrade gracefully.
    pub fn record_failed(&self, now: SimTime, site: FaultSite, action: &'static str) {
        let Some(inner) = self.inner.as_deref() else {
            return;
        };
        inner.stats[site.index()]
            .failed
            .fetch_add(1, Ordering::Relaxed);
        if let Some(reg) = inner.metrics.get() {
            if reg.is_enabled() {
                reg.counter(
                    "fault_failed_total",
                    &[("site", site.label()), ("action", action)],
                )
                .inc();
            }
        }
        if let Some(tracer) = inner.trace.get() {
            tracer.emit(|| TraceEvent::FaultFailed {
                at: now,
                site: site.label(),
                action,
            });
        }
    }

    /// Total faults injected across all sites.
    pub fn injected_total(&self) -> u64 {
        self.stat_total(|s| &s.injected)
    }

    /// Total faults recovered across all sites.
    pub fn recovered_total(&self) -> u64 {
        self.stat_total(|s| &s.recovered)
    }

    /// Total recovery failures across all sites.
    pub fn failed_total(&self) -> u64 {
        self.stat_total(|s| &s.failed)
    }

    /// Faults injected at one site.
    pub fn injected_at(&self, site: FaultSite) -> u64 {
        self.inner.as_deref().map_or(0, |i| {
            i.stats[site.index()].injected.load(Ordering::Relaxed)
        })
    }

    /// Faults recovered at one site.
    pub fn recovered_at(&self, site: FaultSite) -> u64 {
        self.inner.as_deref().map_or(0, |i| {
            i.stats[site.index()].recovered.load(Ordering::Relaxed)
        })
    }

    fn stat_total(&self, f: impl Fn(&SiteStats) -> &AtomicU64) -> u64 {
        self.inner.as_deref().map_or(0, |i| {
            i.stats.iter().map(|s| f(s).load(Ordering::Relaxed)).sum()
        })
    }
}

/// Decrements `budget` if positive; true when a unit was taken.
fn take_one(budget: &AtomicU64) -> bool {
    budget
        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| v.checked_sub(1))
        .is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_plan_never_fires() {
        let plan = FaultPlan::none();
        assert!(!plan.is_active());
        assert!(plan.nand_read_fault().is_none());
        assert_eq!(plan.link_corrupt_attempts(FaultSite::LinkToHost), 0);
        assert!(plan.core_stall().is_none());
        assert!(plan.ssdlet_disruption().is_none());
        assert_eq!(plan.max_restarts(), 0);
        assert!(plan.host_timeout().is_none());
        plan.record_injected(SimTime::ZERO, FaultSite::NandRead, "x");
        assert_eq!(plan.injected_total(), 0);
    }

    #[test]
    fn draws_are_deterministic_for_a_seed() {
        fn sequence(seed: u64) -> Vec<Option<NandReadFault>> {
            let plan = FaultPlan::seeded(
                seed,
                FaultConfig {
                    nand_read_error_rate: 0.3,
                    nand_uncorrectable_rate: 0.2,
                    ..FaultConfig::default()
                },
            );
            (0..64).map(|_| plan.nand_read_fault()).collect()
        }
        assert_eq!(sequence(42), sequence(42));
        assert_ne!(sequence(42), sequence(43), "different seeds diverge");
        let fired = sequence(42).iter().filter(|f| f.is_some()).count();
        assert!(fired > 0 && fired < 64, "rate 0.3 is neither 0 nor 1");
    }

    #[test]
    fn sites_draw_independent_streams() {
        let cfg = FaultConfig {
            link_corrupt_rate: 0.5,
            ..FaultConfig::default()
        };
        // Interleaving draws at another site must not shift this site's
        // stream: compare to-host draws with and without to-device noise.
        let a = FaultPlan::seeded(9, cfg.clone());
        let pure: Vec<u32> = (0..32)
            .map(|_| a.link_corrupt_attempts(FaultSite::LinkToHost))
            .collect();
        let b = FaultPlan::seeded(9, cfg);
        let mixed: Vec<u32> = (0..32)
            .map(|_| {
                b.link_corrupt_attempts(FaultSite::LinkToDevice);
                b.link_corrupt_attempts(FaultSite::LinkToHost)
            })
            .collect();
        assert_eq!(pure, mixed);
    }

    #[test]
    fn rate_one_always_fires_and_respects_budgets() {
        let plan = FaultPlan::seeded(
            1,
            FaultConfig {
                nand_read_error_rate: 1.0,
                nand_max_retries: 3,
                link_corrupt_rate: 1.0,
                link_max_replays: 4,
                core_stall_rate: 1.0,
                ssdlet_panics: 1,
                ssdlet_stalls: 1,
                ..FaultConfig::default()
            },
        );
        for _ in 0..16 {
            let f = plan.nand_read_fault().expect("always fires");
            assert!((1..=3).contains(&f.retries));
            let n = plan.link_corrupt_attempts(FaultSite::LinkToDevice);
            assert!((1..=4).contains(&n));
            assert!(plan.core_stall().is_some());
        }
        // Stalls drain before panics; both budgets are finite.
        assert!(matches!(
            plan.ssdlet_disruption(),
            Some(SsdletDisruption::Stall(_))
        ));
        assert_eq!(plan.ssdlet_disruption(), Some(SsdletDisruption::Panic));
        assert_eq!(plan.ssdlet_disruption(), None);
    }

    #[test]
    fn uncorrectable_reads_charge_the_full_budget() {
        let plan = FaultPlan::seeded(
            5,
            FaultConfig {
                nand_read_error_rate: 1.0,
                nand_uncorrectable_rate: 1.0,
                nand_max_retries: 3,
                ..FaultConfig::default()
            },
        );
        let f = plan.nand_read_fault().unwrap();
        assert!(f.uncorrectable);
        assert_eq!(f.retries, 3);
    }

    #[test]
    fn accounting_and_metrics_flow() {
        let reg = MetricsRegistry::new();
        reg.enable();
        let plan = FaultPlan::seeded(0, FaultConfig::default());
        plan.attach_metrics(&reg);
        plan.record_injected(SimTime::ZERO, FaultSite::LinkToHost, "crc");
        plan.record_recovered(SimTime::ZERO, FaultSite::LinkToHost, "link_replay");
        plan.record_failed(SimTime::ZERO, FaultSite::Ssdlet, "restart");
        assert_eq!(plan.injected_total(), 1);
        assert_eq!(plan.recovered_total(), 1);
        assert_eq!(plan.failed_total(), 1);
        assert_eq!(plan.injected_at(FaultSite::LinkToHost), 1);
        assert_eq!(plan.recovered_at(FaultSite::LinkToHost), 1);
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter_value("fault_injected_total", &[("site", "link_to_host")]),
            Some(1)
        );
        assert_eq!(
            snap.counter_value(
                "fault_recovered_total",
                &[("site", "link_to_host"), ("action", "link_replay")]
            ),
            Some(1)
        );
        assert_eq!(
            snap.counter_value(
                "fault_failed_total",
                &[("site", "ssdlet"), ("action", "restart")]
            ),
            Some(1)
        );
    }

    #[test]
    fn drive_loss_draws_deterministically_and_respects_budget() {
        let cfg = FaultConfig {
            drive_losses: 2,
            drive_loss_phase: DriveLossPhase::MidGather,
            drive_loss_items: 3,
            ..FaultConfig::default()
        };
        let a = FaultPlan::seeded(11, cfg.clone());
        let b = FaultPlan::seeded(11, cfg.clone());
        let first = a.drive_loss(8).expect("budget 2: first scatter fires");
        assert_eq!(Some(first), b.drive_loss(8), "same seed, same draw");
        assert!(first.shard < 8);
        assert_eq!(first.phase, DriveLossPhase::MidGather);
        assert_eq!(first.items, 3);
        assert!(a.drive_loss(8).is_some());
        assert_eq!(a.drive_loss(8), None, "budget exhausted");
        // Inert defaults never fire, and zero shards cannot lose a drive.
        assert_eq!(
            FaultPlan::seeded(11, FaultConfig::default()).drive_loss(4),
            None
        );
        assert_eq!(FaultPlan::none().drive_loss(4), None);
        let c = FaultPlan::seeded(11, cfg);
        assert_eq!(c.drive_loss(0), None);
    }

    #[test]
    fn power_loss_draws_deterministically_and_respects_phase() {
        let cfg = FaultConfig {
            power_losses: 1,
            power_loss_phase: PowerLossPhase::MidWrite,
            power_loss_window: 8,
            ..FaultConfig::default()
        };
        let fire_at = |plan: &FaultPlan| -> Option<usize> {
            (0..64).find(|_| plan.power_loss(false).is_some())
        };
        let a = FaultPlan::seeded(21, cfg.clone());
        let b = FaultPlan::seeded(21, cfg.clone());
        let at = fire_at(&a).expect("window 8 fires within 64 ops");
        assert!(at < 8, "crash lands inside the window");
        assert_eq!(Some(at), fire_at(&b), "same seed, same instant");
        assert!(fire_at(&a).is_none(), "budget 1 is exhausted");
        // GC ops are ineligible under MidWrite and never advance the
        // counted stream.
        let c = FaultPlan::seeded(21, cfg.clone());
        for _ in 0..64 {
            assert!(c.power_loss(true).is_none());
        }
        assert_eq!(fire_at(&c), Some(at), "gc noise does not shift instant");
        // The torn/clean sub-draw is seed-stable too.
        let d = FaultPlan::seeded(21, cfg.clone());
        let e = FaultPlan::seeded(21, cfg);
        let torn_d = (0..64).find_map(|_| d.power_loss(false)).unwrap().torn;
        let torn_e = (0..64).find_map(|_| e.power_loss(false)).unwrap().torn;
        assert_eq!(torn_d, torn_e);
        assert_eq!(FaultPlan::none().power_loss(false), None);
    }

    #[test]
    fn power_loss_budget_spreads_over_distinct_instants() {
        let plan = FaultPlan::seeded(
            77,
            FaultConfig {
                power_losses: 3,
                power_loss_phase: PowerLossPhase::MidGc,
                power_loss_window: 5,
                ..FaultConfig::default()
            },
        );
        let fired: Vec<usize> = (0..64)
            .filter(|_| plan.power_loss(true).is_some())
            .collect();
        assert_eq!(fired.len(), 3, "whole budget fires");
        assert!(fired.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn clones_share_state() {
        let plan = FaultPlan::seeded(
            3,
            FaultConfig {
                ssdlet_panics: 1,
                ..FaultConfig::default()
            },
        );
        let clone = plan.clone();
        assert_eq!(clone.ssdlet_disruption(), Some(SsdletDisruption::Panic));
        assert_eq!(plan.ssdlet_disruption(), None, "budget is shared");
        clone.record_injected(SimTime::ZERO, FaultSite::Ssdlet, "panic");
        assert_eq!(plan.injected_total(), 1);
    }
}
