//! Query-scoped causal profiling: span propagation and per-query
//! latency attribution.
//!
//! [`crate::trace`] answers "what did the machine do"; this module answers
//! the question the paper's Fig. 10 implicitly poses — *where does an
//! individual query's latency go*? A [`SpanContext`] (query id, tenant id,
//! parent span) is minted when a query is submitted and rides along every
//! layer the request touches: the DES kernel propagates it across fiber
//! spawns, `biscuit-core` ports carry it on their envelopes (and
//! `biscuit-proto` defines its wire form), and the device datapath records
//! resource occupancy *spans* against whatever context the running fiber
//! carries. From the resulting span set, [`QueryProfiler::snapshot`]
//! derives a deterministic [`QueryProfile`] per query:
//!
//! - a per-[`Stage`] virtual-time breakdown that **sums exactly** to the
//!   query's end-to-end latency (an exclusive time sweep: every instant of
//!   the query window is attributed to the innermost — latest-started —
//!   covering span; uncovered gaps count as queue/scheduling wait);
//! - the **critical path**: the sweep's winning segments, merged, in time
//!   order — the chain of resource occupancies that the query's completion
//!   actually waited on;
//! - self-vs-blocked time per stage: `busy` is the union of a stage's
//!   recorded spans inside the window; `busy - self` is time the stage was
//!   occupied but hidden behind later-started (inner) work.
//!
//! ## Determinism and cost
//!
//! Profiling is **pure observation**: recording a span never sleeps,
//! spawns, or otherwise perturbs virtual time, so enabling it cannot
//! change any simulated result. Query and span ids are minted in fiber
//! execution order, which the kernel makes deterministic, so
//! [`QueryProfiles::to_json`] is byte-identical for a given seed — and,
//! because each parallel shard kernel owns its own profiler, shard-ordered
//! fleet exports are byte-identical across every `BISCUIT_PAR` policy.
//! Disabled (the default), every instrumentation site costs one relaxed
//! atomic load, the same contract as [`crate::trace::Tracer`] and
//! [`crate::metrics::MetricsRegistry`]. The `BISCUIT_QPROF` environment
//! variable enables collection in examples and harnesses, with its value
//! as the export path ([`QprofConfig::from_env`]).
//!
//! ## Example
//!
//! ```
//! use biscuit_sim::qprof::Stage;
//! use biscuit_sim::{Simulation, time::SimDuration};
//!
//! let sim = Simulation::new(0);
//! sim.enable_qprof();
//! sim.spawn("host", |ctx| {
//!     let qp = ctx.qprof().clone();
//!     let span = qp.begin_query(ctx, 0).unwrap();
//!     let start = ctx.now();
//!     ctx.sleep(SimDuration::from_micros(30));
//!     qp.record(Stage::NandRead, start, ctx.now(), 4096, 0);
//!     qp.end_query(ctx, span);
//! });
//! let report = sim.run();
//! let profile = &report.profiles.queries()[0];
//! assert_eq!(profile.end_to_end().as_micros(), 30);
//! assert_eq!(profile.breakdown_ps(Stage::NandRead), 30_000_000);
//! ```

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::kernel::{Ctx, Pid};
use crate::time::{SimDuration, SimTime};
use crate::trace::escape_json_into;

/// Configuration hook for query profiling, mirroring
/// [`crate::trace::TraceConfig::from_env`].
#[derive(Debug, Clone, Default)]
pub struct QprofConfig;

impl QprofConfig {
    /// Returns a config when `BISCUIT_QPROF` is set and non-empty.
    /// Examples and harnesses use the variable's value as the output path
    /// for the exported profile JSON, so
    /// `BISCUIT_QPROF=qprof.json cargo run --example tpch_offload` both
    /// enables profiling and names the file.
    pub fn from_env() -> Option<Self> {
        match std::env::var("BISCUIT_QPROF") {
            Ok(v) if !v.is_empty() => Some(QprofConfig),
            _ => None,
        }
    }
}

/// The pipeline stage a recorded span is attributed to.
///
/// The order here is the canonical export order; it also breaks ties in
/// the exclusive sweep when two spans start at the same instant (the
/// later variant wins, i.e. the most "downstream" stage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Admission / dispatch / scheduling wait. Explicit queue spans land
    /// here, as does every instant of the query window no span covers.
    QueueWait,
    /// NAND die occupancy (page sense, read-retry, program).
    NandRead,
    /// Flash channel bus transfer.
    BusTransfer,
    /// Pattern-matcher IP streaming.
    Match,
    /// Device CPU core time: per-request firmware overhead and SSDlet
    /// compute charges.
    SsdletCompute,
    /// PCIe link DMA (either direction), including link queueing.
    Link,
    /// Host-side gather/merge of shard or port results.
    HostMerge,
    /// Host CPU time: conventional-path scans, predicate evaluation,
    /// result assembly.
    HostCompute,
}

impl Stage {
    /// All stages in canonical export order.
    pub const ALL: [Stage; 8] = [
        Stage::QueueWait,
        Stage::NandRead,
        Stage::BusTransfer,
        Stage::Match,
        Stage::SsdletCompute,
        Stage::Link,
        Stage::HostMerge,
        Stage::HostCompute,
    ];

    /// Stable snake_case label used in JSON exports and reports.
    pub fn label(self) -> &'static str {
        match self {
            Stage::QueueWait => "queue_wait",
            Stage::NandRead => "nand_read",
            Stage::BusTransfer => "bus_transfer",
            Stage::Match => "match",
            Stage::SsdletCompute => "ssdlet_compute",
            Stage::Link => "link",
            Stage::HostMerge => "host_merge",
            Stage::HostCompute => "host_compute",
        }
    }

    /// The Chrome-trace device track a critical-path segment of this stage
    /// maps onto (`lane` is the channel / core / direction index), or
    /// `None` for host-side stages that have no device track.
    pub(crate) fn track_key(self, lane: u32) -> Option<String> {
        match self {
            Stage::NandRead => Some(format!("nand.ch{lane}")),
            Stage::BusTransfer => Some(format!("bus.ch{lane}")),
            Stage::Match => Some(format!("pm.ch{lane}")),
            Stage::SsdletCompute => Some(format!("cpu.core.{lane}")),
            Stage::Link => Some(
                if lane == 0 {
                    "link.to_host"
                } else {
                    "link.to_device"
                }
                .to_string(),
            ),
            Stage::QueueWait | Stage::HostMerge | Stage::HostCompute => None,
        }
    }
}

/// The causal identity a request carries through the stack: which query
/// (and tenant) it belongs to, and which span is its parent.
///
/// Contexts are minted by [`QueryProfiler::begin_query`] (root) and
/// [`QueryProfiler::child`] (phase nodes such as one shard of a scatter,
/// or a mid-query host fallback). The kernel propagates the current
/// context across fiber spawns; ports carry it on their envelopes (see
/// `biscuit_proto::span::SpanHeader` for the wire form).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpanContext {
    /// Query id, unique within one simulation (minted from 1).
    pub query: u64,
    /// Tenant (user) id the query belongs to.
    pub tenant: u32,
    /// This context's span id; spans recorded under the context use it as
    /// their parent.
    pub span: u32,
}

/// One recorded leaf span: a resource occupancy attributed to a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct SpanRec {
    parent: u32,
    stage: Stage,
    start: u64,
    end: u64,
    bytes: u64,
    lane: u32,
}

/// A named non-leaf node of the span DAG (scatter shard, host fallback).
#[derive(Debug, Clone)]
struct PhaseRec {
    id: u32,
    parent: u32,
    label: &'static str,
}

#[derive(Debug)]
struct QueryRec {
    tenant: u32,
    root: u32,
    start: u64,
    end: Option<u64>,
    spans: Vec<SpanRec>,
    phases: Vec<PhaseRec>,
}

#[derive(Debug, Default)]
struct ProfState {
    next_query: u64,
    next_span: u32,
    /// Context of the fiber the kernel is currently running. Exactly one
    /// fiber runs at any instant, so this single cell is exact; it lets
    /// instrumentation sites without a `Ctx` (device reservation paths)
    /// attribute work to the right query.
    current: Option<SpanContext>,
    /// Per-fiber inherited context, indexed by [`Pid`].
    fiber_ctx: Vec<Option<SpanContext>>,
    queries: BTreeMap<u64, QueryRec>,
}

impl ProfState {
    fn set_fiber(&mut self, pid: Pid, sc: Option<SpanContext>) {
        if self.fiber_ctx.len() <= pid {
            self.fiber_ctx.resize(pid + 1, None);
        }
        self.fiber_ctx[pid] = sc;
        self.current = sc;
    }
}

#[derive(Debug)]
struct QprofInner {
    enabled: AtomicBool,
    state: Mutex<ProfState>,
}

/// A cheaply cloneable handle to a simulation's query profiler.
///
/// Every [`crate::Simulation`] owns one (disabled by default); library
/// code shares it by clone, exactly like [`crate::trace::Tracer`]. All
/// entry points check one relaxed atomic flag first, so the disabled
/// profiler costs one relaxed atomic load per site and nothing else.
#[derive(Debug, Clone)]
pub struct QueryProfiler {
    inner: Arc<QprofInner>,
}

impl Default for QueryProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl QueryProfiler {
    /// Creates a disabled profiler.
    pub fn new() -> Self {
        QueryProfiler {
            inner: Arc::new(QprofInner {
                enabled: AtomicBool::new(false),
                state: Mutex::new(ProfState::default()),
            }),
        }
    }

    /// Enables collection (ids restart from 1 on a fresh profiler).
    pub fn enable(&self) {
        self.inner.enabled.store(true, Ordering::Release);
    }

    /// True while the profiler records spans.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Kernel hook: a new fiber `pid` inherits the spawning fiber's
    /// current context.
    #[inline]
    pub(crate) fn on_spawn(&self, pid: Pid) {
        if !self.is_enabled() {
            return;
        }
        let mut st = self.inner.state.lock();
        let cur = st.current;
        if st.fiber_ctx.len() <= pid {
            st.fiber_ctx.resize(pid + 1, None);
        }
        st.fiber_ctx[pid] = cur;
    }

    /// Kernel hook: the scheduler is about to resume fiber `pid`; its
    /// inherited context becomes the current one.
    #[inline]
    pub(crate) fn on_switch(&self, pid: Pid) {
        if !self.is_enabled() {
            return;
        }
        let mut st = self.inner.state.lock();
        st.current = st.fiber_ctx.get(pid).copied().flatten();
    }

    /// Mints a root [`SpanContext`] for a newly submitted query of
    /// `tenant` and installs it as the calling fiber's context. Returns
    /// `None` while disabled.
    pub fn begin_query(&self, ctx: &Ctx, tenant: u32) -> Option<SpanContext> {
        self.begin_query_at(ctx.now(), ctx.pid(), tenant)
    }

    /// [`QueryProfiler::begin_query`] with an explicit submission time and
    /// fiber — used when the minting site (e.g. a scheduler's submit path)
    /// runs on a different fiber than the query body.
    pub fn begin_query_at(&self, now: SimTime, pid: Pid, tenant: u32) -> Option<SpanContext> {
        if !self.is_enabled() {
            return None;
        }
        let mut st = self.inner.state.lock();
        st.next_query += 1;
        st.next_span += 1;
        let sc = SpanContext {
            query: st.next_query,
            tenant,
            span: st.next_span,
        };
        st.queries.insert(
            sc.query,
            QueryRec {
                tenant,
                root: sc.span,
                start: now.as_ps(),
                end: None,
                spans: Vec::new(),
                phases: Vec::new(),
            },
        );
        st.set_fiber(pid, Some(sc));
        Some(sc)
    }

    /// Closes `sc`'s query at the current time and clears the calling
    /// fiber's context.
    pub fn end_query(&self, ctx: &Ctx, sc: SpanContext) {
        if !self.is_enabled() {
            return;
        }
        let mut st = self.inner.state.lock();
        if let Some(q) = st.queries.get_mut(&sc.query) {
            q.end = Some(ctx.now().as_ps());
        }
        st.set_fiber(ctx.pid(), None);
    }

    /// Mints a child phase node under `sc` (e.g. `"shard3"` of a scatter,
    /// or `"host_fallback"` after an offload failure) and returns the
    /// child context. Spans recorded under the returned context parent to
    /// the new node, keeping the DAG causal through retries and fallback.
    pub fn child(&self, sc: SpanContext, label: &'static str) -> SpanContext {
        if !self.is_enabled() {
            return sc;
        }
        let mut st = self.inner.state.lock();
        st.next_span += 1;
        let id = st.next_span;
        if let Some(q) = st.queries.get_mut(&sc.query) {
            q.phases.push(PhaseRec {
                id,
                parent: sc.span,
                label,
            });
        }
        SpanContext { span: id, ..sc }
    }

    /// Installs `sc` as the calling fiber's context (adoption from a
    /// packet-carried header, or a phase switch within one fiber).
    pub fn adopt(&self, ctx: &Ctx, sc: Option<SpanContext>) {
        self.adopt_on(ctx.pid(), sc);
    }

    /// [`QueryProfiler::adopt`] by fiber id.
    pub fn adopt_on(&self, pid: Pid, sc: Option<SpanContext>) {
        if !self.is_enabled() {
            return;
        }
        self.inner.state.lock().set_fiber(pid, sc);
    }

    /// The context of the currently running fiber, if any.
    pub fn current(&self) -> Option<SpanContext> {
        if !self.is_enabled() {
            return None;
        }
        self.inner.state.lock().current
    }

    /// Records a `[start, end)` occupancy of `stage` against the current
    /// fiber's context. `lane` is the channel / core / link-direction
    /// index used to stitch critical-path segments onto Chrome device
    /// tracks. A no-op while disabled or outside any query.
    #[inline]
    pub fn record(&self, stage: Stage, start: SimTime, end: SimTime, bytes: u64, lane: u32) {
        if !self.is_enabled() {
            return;
        }
        let mut st = self.inner.state.lock();
        let Some(sc) = st.current else { return };
        Self::push_span(&mut st, sc, stage, start, end, bytes, lane);
    }

    /// Records a span against an explicit context — used when the
    /// recording fiber acts on another query's behalf (e.g. a scheduler
    /// recording a queue-wait span at dispatch).
    pub fn record_for(
        &self,
        sc: SpanContext,
        stage: Stage,
        start: SimTime,
        end: SimTime,
        bytes: u64,
        lane: u32,
    ) {
        if !self.is_enabled() {
            return;
        }
        let mut st = self.inner.state.lock();
        Self::push_span(&mut st, sc, stage, start, end, bytes, lane);
    }

    #[allow(clippy::too_many_arguments)]
    fn push_span(
        st: &mut ProfState,
        sc: SpanContext,
        stage: Stage,
        start: SimTime,
        end: SimTime,
        bytes: u64,
        lane: u32,
    ) {
        if end <= start {
            return;
        }
        if let Some(q) = st.queries.get_mut(&sc.query) {
            q.spans.push(SpanRec {
                parent: sc.span,
                stage,
                start: start.as_ps(),
                end: end.as_ps(),
                bytes,
                lane,
            });
        }
    }

    /// Derives the per-query profiles from everything recorded so far.
    pub fn snapshot(&self) -> QueryProfiles {
        let st = self.inner.state.lock();
        let mut queries = Vec::new();
        let mut open = 0usize;
        for (id, q) in &st.queries {
            match q.end {
                Some(end) => queries.push(QueryProfile::derive(*id, q, end)),
                None => open += 1,
            }
        }
        QueryProfiles { queries, open }
    }
}

/// One segment of a query's critical path: the span the sweep attributed
/// this slice of the query window to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CritSegment {
    /// Stage of the winning span (or [`Stage::QueueWait`] for a gap).
    pub stage: Stage,
    /// Channel / core / direction index of the winning span.
    pub lane: u32,
    /// Segment start, picoseconds.
    pub start_ps: u64,
    /// Segment end, picoseconds.
    pub end_ps: u64,
}

/// The derived latency attribution of one completed query.
#[derive(Debug, Clone)]
pub struct QueryProfile {
    /// Query id.
    pub query: u64,
    /// Tenant (user) id.
    pub tenant: u32,
    /// Submission time.
    pub start: SimTime,
    /// Completion time.
    pub end: SimTime,
    /// Exclusive per-stage attribution, in [`Stage::ALL`] order. Sums
    /// exactly to `end - start`.
    pub breakdown: [u64; Stage::ALL.len()],
    /// Union of each stage's recorded spans inside the query window
    /// ("busy" time); `busy - breakdown` is that stage's blocked-behind-
    /// inner-work time.
    pub busy: [u64; Stage::ALL.len()],
    /// Bytes moved per stage (sum of recorded span bytes).
    pub bytes: [u64; Stage::ALL.len()],
    /// The critical path: winning sweep segments, merged, in time order.
    pub critical_path: Vec<CritSegment>,
    /// Leaf spans recorded for this query.
    pub spans: usize,
    /// Spans that violated closure: outside the query window, or parented
    /// to a span id that is neither the root nor a recorded phase node.
    /// Zero when accounting closes (the tested invariant).
    pub orphans: usize,
}

impl QueryProfile {
    /// End-to-end virtual latency.
    pub fn end_to_end(&self) -> SimDuration {
        self.end - self.start
    }

    /// Exclusive picoseconds attributed to `stage`.
    pub fn breakdown_ps(&self, stage: Stage) -> u64 {
        self.breakdown[Stage::ALL.iter().position(|s| *s == stage).expect("stage")]
    }

    /// Sum of the exclusive breakdown — equals `end_to_end` by
    /// construction (asserted by the determinism suite).
    pub fn breakdown_total_ps(&self) -> u64 {
        self.breakdown.iter().sum()
    }

    fn derive(id: u64, q: &QueryRec, end: u64) -> QueryProfile {
        let start = q.start;
        let mut orphans = 0usize;
        // Parent validity: root or a recorded phase node.
        let mut valid: Vec<u32> = q.phases.iter().map(|p| p.id).collect();
        valid.push(q.root);
        valid.sort_unstable();
        let mut clipped: Vec<SpanRec> = Vec::with_capacity(q.spans.len());
        for s in &q.spans {
            if s.start < start || s.end > end || valid.binary_search(&s.parent).is_err() {
                orphans += 1;
                continue;
            }
            clipped.push(*s);
        }

        // Exclusive sweep: at every elementary interval the latest-started
        // covering span wins (ties: later record order). Gaps are queue /
        // scheduling wait.
        let mut bounds: Vec<u64> = Vec::with_capacity(clipped.len() * 2 + 2);
        bounds.push(start);
        bounds.push(end);
        for s in &clipped {
            bounds.push(s.start);
            bounds.push(s.end);
        }
        bounds.sort_unstable();
        bounds.dedup();

        let mut breakdown = [0u64; Stage::ALL.len()];
        let mut segments: Vec<CritSegment> = Vec::new();
        for w in bounds.windows(2) {
            let (a, b) = (w[0], w[1]);
            if a < start || b > end || a == b {
                continue;
            }
            let mut win: Option<(u64, usize, Stage, u32)> = None;
            for (i, s) in clipped.iter().enumerate() {
                if s.start <= a && s.end >= b {
                    let key = (s.start, i, s.stage, s.lane);
                    if win.map_or(true, |cur| (key.0, key.1) > (cur.0, cur.1)) {
                        win = Some(key);
                    }
                }
            }
            let (stage, lane) = win.map_or((Stage::QueueWait, 0), |(_, _, st, ln)| (st, ln));
            breakdown[Stage::ALL.iter().position(|s| *s == stage).expect("stage")] += b - a;
            match segments.last_mut() {
                Some(last) if last.stage == stage && last.lane == lane && last.end_ps == a => {
                    last.end_ps = b;
                }
                _ => segments.push(CritSegment {
                    stage,
                    lane,
                    start_ps: a,
                    end_ps: b,
                }),
            }
        }

        // Per-stage busy time: union of that stage's intervals.
        let mut busy = [0u64; Stage::ALL.len()];
        let mut bytes = [0u64; Stage::ALL.len()];
        for (si, stage) in Stage::ALL.iter().enumerate() {
            let mut ivs: Vec<(u64, u64)> = clipped
                .iter()
                .filter(|s| s.stage == *stage)
                .map(|s| (s.start, s.end))
                .collect();
            ivs.sort_unstable();
            let mut covered = 0u64;
            let mut cur: Option<(u64, u64)> = None;
            for (a, b) in ivs {
                match cur {
                    Some((ca, cb)) if a <= cb => cur = Some((ca, cb.max(b))),
                    Some((ca, cb)) => {
                        covered += cb - ca;
                        cur = Some((a, b));
                    }
                    None => cur = Some((a, b)),
                }
            }
            if let Some((ca, cb)) = cur {
                covered += cb - ca;
            }
            busy[si] = covered;
            bytes[si] = clipped
                .iter()
                .filter(|s| s.stage == *stage)
                .map(|s| s.bytes)
                .sum();
        }

        QueryProfile {
            query: id,
            tenant: q.tenant,
            start: SimTime::from_ps(start),
            end: SimTime::from_ps(end),
            breakdown,
            busy,
            bytes,
            critical_path: segments,
            spans: clipped.len(),
            orphans,
        }
    }
}

/// The profiles of every completed query in one simulation, in query-id
/// order. Carried on [`crate::SimReport::profiles`].
#[derive(Debug, Clone, Default)]
pub struct QueryProfiles {
    queries: Vec<QueryProfile>,
    open: usize,
}

impl QueryProfiles {
    /// The completed queries' profiles, in query-id order.
    pub fn queries(&self) -> &[QueryProfile] {
        &self.queries
    }

    /// Queries begun but never ended — nonzero means a leak (a query
    /// fiber died without closing its root span).
    pub fn open(&self) -> usize {
        self.open
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty() && self.open == 0
    }

    /// Byte-deterministic JSON export. All values are integers (no float
    /// formatting), keys are emitted in a fixed order, and queries are
    /// sorted by id, so the output is a pure function of the recorded
    /// span set — the artifact the cross-policy determinism suite diffs.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"queries\":[");
        for (i, q) in self.queries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"query\":{},\"tenant\":{},\"start_ps\":{},\"end_ps\":{},\"end_to_end_ps\":{},\"spans\":{},\"orphans\":{}",
                q.query,
                q.tenant,
                q.start.as_ps(),
                q.end.as_ps(),
                q.end_to_end().as_ps(),
                q.spans,
                q.orphans
            ));
            for (title, values) in [
                ("breakdown_ps", &q.breakdown),
                ("busy_ps", &q.busy),
                ("bytes", &q.bytes),
            ] {
                out.push_str(&format!(",\"{title}\":{{"));
                for (si, stage) in Stage::ALL.iter().enumerate() {
                    if si > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("\"{}\":{}", stage.label(), values[si]));
                }
                out.push('}');
            }
            out.push_str(",\"critical_path\":[");
            for (si, seg) in q.critical_path.iter().enumerate() {
                if si > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "{{\"stage\":\"{}\",\"lane\":{},\"start_ps\":{},\"end_ps\":{}}}",
                    seg.stage.label(),
                    seg.lane,
                    seg.start_ps,
                    seg.end_ps
                ));
            }
            out.push_str("]}");
        }
        out.push_str(&format!("],\"open\":{}}}", self.open));
        out
    }

    /// Writes [`QueryProfiles::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn write_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }

    /// Renders a human-readable per-stage latency table for each query
    /// (the `qprof` triage bin's output).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        for q in &self.queries {
            let total = q.end_to_end().as_ps().max(1);
            out.push_str(&format!(
                "query {} (tenant {}): end-to-end {:.3} us, {} spans, {} orphans\n",
                q.query,
                q.tenant,
                q.end_to_end().as_ps() as f64 / 1e6,
                q.spans,
                q.orphans
            ));
            out.push_str(&format!(
                "  {:<16}{:>14}{:>9}{:>14}{:>14}\n",
                "stage", "self (us)", "self %", "busy (us)", "bytes"
            ));
            for (si, stage) in Stage::ALL.iter().enumerate() {
                if q.breakdown[si] == 0 && q.busy[si] == 0 {
                    continue;
                }
                out.push_str(&format!(
                    "  {:<16}{:>14.3}{:>8.1}%{:>14.3}{:>14}\n",
                    stage.label(),
                    q.breakdown[si] as f64 / 1e6,
                    q.breakdown[si] as f64 * 100.0 / total as f64,
                    q.busy[si] as f64 / 1e6,
                    q.bytes[si]
                ));
            }
            out.push_str(&format!(
                "  critical path: {} segments\n",
                q.critical_path.len()
            ));
        }
        if self.open > 0 {
            out.push_str(&format!("WARNING: {} queries never closed\n", self.open));
        }
        out
    }

    /// Chrome `trace_event` flow events stitching each query's critical
    /// path across the trace's device tracks — feed the result to
    /// [`crate::trace::Trace::to_chrome_json_with_flows`].
    pub(crate) fn flow_entries(
        &self,
        device_tids: &BTreeMap<String, u32>,
        device_pid: u32,
        flow_pid: u32,
    ) -> Vec<(u64, String)> {
        let mut entries = Vec::new();
        for q in &self.queries {
            let name = {
                let mut n = String::new();
                escape_json_into(&mut n, &format!("query {} tenant {}", q.query, q.tenant));
                n
            };
            // One envelope slice per query on the flow process.
            let tid = q.query as u32;
            entries.push((
                q.start.as_ps(),
                format!(
                    r#"{{"name":"{}","cat":"query","ph":"X","ts":{},"dur":{},"pid":{},"tid":{},"args":{{"end_to_end_ps":{}}}}}"#,
                    name,
                    crate::trace::ts_us(q.start.as_ps()),
                    crate::trace::ts_us(q.end.as_ps() - q.start.as_ps()),
                    flow_pid,
                    tid,
                    q.end_to_end().as_ps()
                ),
            ));
            // Flow chain: start on the query slice, one step per
            // critical-path segment on the segment's device track when the
            // trace has it, finish back on the query slice.
            entries.push((
                q.start.as_ps(),
                format!(
                    r#"{{"name":"{}","cat":"query","ph":"s","id":{},"ts":{},"pid":{},"tid":{}}}"#,
                    name,
                    q.query,
                    crate::trace::ts_us(q.start.as_ps()),
                    flow_pid,
                    tid
                ),
            ));
            for seg in &q.critical_path {
                let (pid, seg_tid) = seg
                    .stage
                    .track_key(seg.lane)
                    .and_then(|key| device_tids.get(&key).copied())
                    .map_or((flow_pid, tid), |t| (device_pid, t));
                entries.push((
                    seg.start_ps,
                    format!(
                        r#"{{"name":"{}","cat":"query","ph":"t","id":{},"ts":{},"pid":{},"tid":{},"args":{{"stage":"{}"}}}}"#,
                        name,
                        q.query,
                        crate::trace::ts_us(seg.start_ps),
                        pid,
                        seg_tid,
                        seg.stage.label()
                    ),
                ));
            }
            entries.push((
                q.end.as_ps(),
                format!(
                    r#"{{"name":"{}","cat":"query","ph":"f","bp":"e","id":{},"ts":{},"pid":{},"tid":{}}}"#,
                    name,
                    q.query,
                    crate::trace::ts_us(q.end.as_ps()),
                    flow_pid,
                    tid
                ),
            ));
        }
        entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulation;

    fn ps(v: u64) -> SimTime {
        SimTime::from_ps(v)
    }

    #[test]
    fn disabled_profiler_is_inert() {
        let sim = Simulation::new(0);
        sim.spawn("q", |ctx| {
            let qp = ctx.qprof().clone();
            assert!(qp.begin_query(ctx, 0).is_none());
            qp.record(Stage::NandRead, ps(0), ps(10), 0, 0);
            assert!(qp.current().is_none());
        });
        let report = sim.run();
        assert!(report.profiles.is_empty());
    }

    #[test]
    fn breakdown_sums_to_end_to_end_with_gaps_and_overlap() {
        let sim = Simulation::new(0);
        sim.enable_qprof();
        sim.spawn("q", |ctx| {
            let qp = ctx.qprof().clone();
            let sc = qp.begin_query(ctx, 3).unwrap();
            // Window [0, 100]: nand [10,40], bus [30,60] (overlaps nand),
            // gap [60,80], link [80,100].
            qp.record(Stage::NandRead, ps(10), ps(40), 4096, 2);
            qp.record(Stage::BusTransfer, ps(30), ps(60), 4096, 2);
            qp.record(Stage::Link, ps(80), ps(100), 512, 0);
            ctx.sleep(SimDuration::from_ps(100));
            qp.end_query(ctx, sc);
        });
        let report = sim.run();
        let q = &report.profiles.queries()[0];
        assert_eq!(q.end_to_end().as_ps(), 100);
        assert_eq!(q.breakdown_total_ps(), 100);
        // Exclusive attribution: nand keeps [10,30), bus wins [30,60)
        // (later start), gaps [0,10) and [60,80) are queue wait.
        assert_eq!(q.breakdown_ps(Stage::NandRead), 20);
        assert_eq!(q.breakdown_ps(Stage::BusTransfer), 30);
        assert_eq!(q.breakdown_ps(Stage::Link), 20);
        assert_eq!(q.breakdown_ps(Stage::QueueWait), 30);
        // Busy is the raw union: nand 30, bus 30.
        assert_eq!(q.busy[1], 30);
        assert_eq!(q.orphans, 0);
        // Critical path in time order, queue gaps included.
        let stages: Vec<Stage> = q.critical_path.iter().map(|s| s.stage).collect();
        assert_eq!(
            stages,
            vec![
                Stage::QueueWait,
                Stage::NandRead,
                Stage::BusTransfer,
                Stage::QueueWait,
                Stage::Link
            ]
        );
    }

    #[test]
    fn contexts_inherit_across_spawn_and_phases_parent_correctly() {
        let sim = Simulation::new(0);
        sim.enable_qprof();
        sim.spawn("root", |ctx| {
            let qp = ctx.qprof().clone();
            let sc = qp.begin_query(ctx, 1).unwrap();
            let shard = qp.child(sc, "shard0");
            let qp2 = qp.clone();
            ctx.spawn("worker", move |wctx| {
                // Inherited the root context; switch to the shard phase.
                assert_eq!(qp2.current().unwrap().query, sc.query);
                qp2.adopt(wctx, Some(shard));
                let t0 = wctx.now();
                wctx.sleep(SimDuration::from_ps(50));
                qp2.record(Stage::SsdletCompute, t0, wctx.now(), 0, 0);
            });
            ctx.sleep(SimDuration::from_ps(80));
            qp.end_query(ctx, sc);
        });
        let report = sim.run();
        let q = &report.profiles.queries()[0];
        assert_eq!(q.spans, 1);
        assert_eq!(q.orphans, 0);
        assert_eq!(q.breakdown_ps(Stage::SsdletCompute), 50);
    }

    #[test]
    fn orphan_spans_are_counted_not_attributed() {
        let sim = Simulation::new(0);
        sim.enable_qprof();
        sim.spawn("q", |ctx| {
            let qp = ctx.qprof().clone();
            let sc = qp.begin_query(ctx, 0).unwrap();
            ctx.sleep(SimDuration::from_ps(10));
            // Bad parent id.
            qp.record_for(
                SpanContext { span: 9999, ..sc },
                Stage::NandRead,
                ps(0),
                ps(5),
                0,
                0,
            );
            qp.end_query(ctx, sc);
        });
        let report = sim.run();
        let q = &report.profiles.queries()[0];
        assert_eq!(q.orphans, 1);
        assert_eq!(q.spans, 0);
        assert_eq!(q.breakdown_ps(Stage::QueueWait), 10);
    }

    #[test]
    fn open_queries_are_reported() {
        let sim = Simulation::new(0);
        sim.enable_qprof();
        sim.spawn("q", |ctx| {
            let qp = ctx.qprof().clone();
            let _ = qp.begin_query(ctx, 0).unwrap();
            // Never ended.
        });
        let report = sim.run();
        assert_eq!(report.profiles.open(), 1);
        assert!(report.profiles.queries().is_empty());
    }

    #[test]
    fn json_export_is_deterministic_and_integer_only() {
        fn run() -> String {
            let sim = Simulation::new(7);
            sim.enable_qprof();
            sim.spawn("q", |ctx| {
                let qp = ctx.qprof().clone();
                let sc = qp.begin_query(ctx, 2).unwrap();
                qp.record(Stage::Match, ps(0), ps(25), 16384, 1);
                ctx.sleep(SimDuration::from_ps(40));
                qp.end_query(ctx, sc);
            });
            sim.run().profiles.to_json()
        }
        let a = run();
        assert_eq!(a, run());
        assert!(a.contains("\"end_to_end_ps\":40"));
        assert!(a.contains("\"match\":25"));
        assert!(!a.contains('.'), "integer-only export, got: {a}");
    }
}
