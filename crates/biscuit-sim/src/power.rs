//! System power and energy accounting (paper Fig. 9 and Table VI).
//!
//! The paper measures wall power of the whole server + SSD: 103 W idle,
//! ~122 W during Conv query execution, ~136 W during Biscuit execution. We
//! model this with per-component two-state (idle/active) power and integrate
//! energy over virtual time, recording a step trace that the Fig. 9 harness
//! replays.

use parking_lot::Mutex;

use crate::time::{SimDuration, SimTime};

/// Identifier for a registered power component.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct ComponentId(usize);

#[derive(Debug)]
struct Component {
    name: String,
    idle_w: f64,
    active_w: f64,
    active: bool,
}

#[derive(Debug)]
struct MeterInner {
    components: Vec<Component>,
    last_update: SimTime,
    energy_j: f64,
    trace: Vec<(SimTime, f64)>,
}

/// Integrates system power over virtual time.
///
/// # Examples
///
/// ```
/// use biscuit_sim::power::PowerMeter;
/// use biscuit_sim::time::{SimTime, SimDuration};
///
/// let meter = PowerMeter::new();
/// let base = meter.register("baseline", 103.0, 103.0);
/// let cpu = meter.register("host-cpu", 0.0, 19.0);
/// let _ = base; // always-on baseline
/// meter.set_active(SimTime::ZERO, cpu, true);
/// let t = SimTime::ZERO + SimDuration::from_secs(10);
/// meter.set_active(t, cpu, false);
/// assert!((meter.energy_joules(t) - 1220.0).abs() < 1e-6);
/// ```
#[derive(Debug, Default)]
pub struct PowerMeter {
    inner: Mutex<MeterInner>,
}

impl Default for MeterInner {
    fn default() -> Self {
        MeterInner {
            components: Vec::new(),
            last_update: SimTime::ZERO,
            energy_j: 0.0,
            trace: Vec::new(),
        }
    }
}

impl PowerMeter {
    /// Creates an empty meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a component with its idle and active draw in Watts.
    ///
    /// # Panics
    ///
    /// Panics if either wattage is negative or NaN.
    pub fn register(&self, name: impl Into<String>, idle_w: f64, active_w: f64) -> ComponentId {
        assert!(idle_w >= 0.0 && active_w >= 0.0, "wattage must be >= 0");
        let mut inner = self.inner.lock();
        let id = ComponentId(inner.components.len());
        inner.components.push(Component {
            name: name.into(),
            idle_w,
            active_w,
            active: false,
        });
        let p = total_power(&inner.components);
        let t = inner.last_update;
        inner.trace.push((t, p));
        id
    }

    /// Marks a component active/idle at virtual time `now`, accumulating
    /// energy for the elapsed interval first.
    ///
    /// # Panics
    ///
    /// Panics if `now` is earlier than the last update.
    pub fn set_active(&self, now: SimTime, id: ComponentId, active: bool) {
        let mut inner = self.inner.lock();
        integrate_to(&mut inner, now);
        if inner.components[id.0].active != active {
            inner.components[id.0].active = active;
            let p = total_power(&inner.components);
            inner.trace.push((now, p));
        }
    }

    /// Total power draw right now (Watts).
    pub fn power_watts(&self) -> f64 {
        total_power(&self.inner.lock().components)
    }

    /// Energy consumed from the epoch through `now`, in Joules.
    pub fn energy_joules(&self, now: SimTime) -> f64 {
        let mut inner = self.inner.lock();
        integrate_to(&mut inner, now);
        inner.energy_j
    }

    /// The recorded `(time, total power)` step trace.
    pub fn trace(&self) -> Vec<(SimTime, f64)> {
        self.inner.lock().trace.clone()
    }

    /// Samples the step trace at a fixed interval over `[0, end]`, producing
    /// a plottable series like the paper's Fig. 9.
    pub fn sample(&self, end: SimTime, interval: SimDuration) -> Vec<(SimTime, f64)> {
        assert!(!interval.is_zero(), "sample interval must be positive");
        let trace = self.trace();
        let mut out = Vec::new();
        let mut t = SimTime::ZERO;
        while t <= end {
            out.push((t, power_at(&trace, t)));
            t = t.saturating_add(interval);
            if t == SimTime::MAX {
                break;
            }
        }
        out
    }

    /// Registered component names (diagnostics).
    pub fn component_names(&self) -> Vec<String> {
        self.inner
            .lock()
            .components
            .iter()
            .map(|c| c.name.clone())
            .collect()
    }
}

fn total_power(components: &[Component]) -> f64 {
    components
        .iter()
        .map(|c| if c.active { c.active_w } else { c.idle_w })
        .sum()
}

fn integrate_to(inner: &mut MeterInner, now: SimTime) {
    assert!(
        now >= inner.last_update,
        "power meter updated backwards in time"
    );
    let dt = now.duration_since(inner.last_update).as_secs_f64();
    inner.energy_j += total_power(&inner.components) * dt;
    inner.last_update = now;
}

fn power_at(trace: &[(SimTime, f64)], t: SimTime) -> f64 {
    match trace.partition_point(|&(ts, _)| ts <= t) {
        0 => 0.0,
        n => trace[n - 1].1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_secs(s)
    }

    #[test]
    fn idle_baseline_integrates() {
        let m = PowerMeter::new();
        m.register("base", 103.0, 103.0);
        assert!((m.energy_joules(secs(10)) - 1030.0).abs() < 1e-9);
    }

    #[test]
    fn active_intervals_add_energy() {
        let m = PowerMeter::new();
        m.register("base", 100.0, 100.0);
        let dev = m.register("ssd", 0.0, 33.0);
        m.set_active(secs(2), dev, true);
        m.set_active(secs(5), dev, false);
        // 100W for 10s + 33W for 3s
        assert!((m.energy_joules(secs(10)) - 1099.0).abs() < 1e-9);
    }

    #[test]
    fn trace_records_steps() {
        let m = PowerMeter::new();
        m.register("base", 50.0, 50.0);
        let c = m.register("x", 0.0, 10.0);
        m.set_active(secs(1), c, true);
        m.set_active(secs(3), c, false);
        let tr = m.trace();
        let powers: Vec<f64> = tr.iter().map(|&(_, p)| p).collect();
        assert_eq!(powers, vec![50.0, 50.0, 60.0, 50.0]);
    }

    #[test]
    fn sample_produces_series() {
        let m = PowerMeter::new();
        m.register("base", 10.0, 10.0);
        let c = m.register("x", 0.0, 5.0);
        m.set_active(secs(2), c, true);
        m.set_active(secs(4), c, false);
        let s = m.sample(secs(5), SimDuration::from_secs(1));
        let powers: Vec<f64> = s.iter().map(|&(_, p)| p).collect();
        assert_eq!(powers, vec![10.0, 10.0, 15.0, 15.0, 10.0, 10.0]);
    }

    #[test]
    fn redundant_set_active_is_noop_in_trace() {
        let m = PowerMeter::new();
        let c = m.register("x", 1.0, 2.0);
        m.set_active(secs(1), c, false);
        assert_eq!(m.trace().len(), 1); // only the registration step
        let _ = c;
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn backwards_update_panics() {
        let m = PowerMeter::new();
        let c = m.register("x", 0.0, 1.0);
        m.set_active(secs(5), c, true);
        m.set_active(secs(1), c, false);
    }
}
