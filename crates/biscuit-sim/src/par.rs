//! Conservative parallel DES: drive a fleet of independent shard kernels
//! on real OS threads.
//!
//! Everything in [`crate::kernel`] is *one* deterministic event loop. The
//! multi-drive workloads (see `biscuit_host::array` and `docs/SCALE.md`)
//! proved that the *global* result order over N drives is a pure function
//! of `(shard id, sequence)` — producer timing never reaches the merged
//! output. This module exploits exactly that property: each drive's
//! simulation becomes its own [`Simulation`] ("shard kernel") advanced on
//! its own OS thread, and the only cross-shard synchronization point is
//! an ordered [`merge_port`] whose consumption order is canonical —
//! sequence-major, lane-minor — and therefore independent of thread
//! interleaving.
//!
//! ## The concurrency contract (see `docs/PARALLEL.md`)
//!
//! - **Shard kernels are independent.** [`run_fleet`] requires that no
//!   shard simulation schedules events into another: fibers of shard `i`
//!   only touch shard `i`'s queues, resources, and devices. The merge
//!   port is the one shared structure, and pushing into it never blocks
//!   and never schedules virtual-time events.
//! - **Same-seed runs are byte-identical.** Every shard kernel is the
//!   ordinary single-threaded kernel, so its trace/metrics exports are a
//!   pure function of its seed and workload. The fleet merges per-shard
//!   artifacts in shard-id order and consumes results in canonical merge
//!   order, so [`ParMode::Single`] and any parallel mode produce
//!   identical bytes.
//! - **Lookahead bounds memory, not correctness.** With
//!   [`ParConfig::lookahead`] set, workers advance all live shards to a
//!   common virtual-time horizon and rendezvous on a barrier before the
//!   next window, so no shard runs unboundedly ahead of the others.
//!   Windows only decide when control returns to the driver — the event
//!   order inside each shard never changes (see
//!   [`Simulation::run_until`]).
//! - **Fusion never crosses a window barrier.** With `BISCUIT_FUSE` on,
//!   shard fibers run hot event chains inline (see [`crate::fuse`]), but
//!   a fused hop is only taken up to the window's `run_until` horizon —
//!   a chain reaching past the barrier de-fuses, parks, and resumes in a
//!   later window exactly where the unfused schedule would, so lookahead
//!   windows still bound memory without changing a single exported byte.
//! - **Merge lanes are unbounded.** A bounded cross-thread lane plus
//!   canonical-order consumption can deadlock when fewer worker threads
//!   than shards exist (the worker that owns the lane the consumer waits
//!   on may itself be parked pushing into a different full lane). Memory
//!   is bounded by the lookahead window instead.
//!
//! ## Example
//!
//! ```
//! use biscuit_sim::par::{self, ParConfig, ParMode};
//! use biscuit_sim::{Simulation, time::SimDuration};
//!
//! // Three shard kernels, each producing its shard id after a sleep.
//! let (txs, mut rx) = par::merge_port::<usize>(3);
//! let mut shards = Vec::new();
//! for (i, tx) in txs.into_iter().enumerate() {
//!     let sim = Simulation::new(par::shard_seed(7, i));
//!     sim.spawn(format!("shard{i}"), move |ctx| {
//!         ctx.sleep(SimDuration::from_micros(10 * (i as u64 + 1)));
//!         tx.send(i);
//!         tx.close();
//!     });
//!     shards.push(sim);
//! }
//! let cfg = ParConfig { mode: ParMode::PerShard, ..ParConfig::default() };
//! let (reports, merged) = par::run_fleet(shards, &cfg, move || {
//!     let mut out = Vec::new();
//!     while let Some((lane, item)) = rx.recv() {
//!         out.push((lane, item));
//!     }
//!     out
//! });
//! assert_eq!(merged, vec![(0, 0), (1, 1), (2, 2)]);
//! assert_eq!(reports.len(), 3);
//! ```

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};

use parking_lot::{Condvar, Mutex};

use crate::kernel::{RunStatus, SimReport, Simulation};
use crate::metrics::MetricsRegistry;
use crate::time::{SimDuration, SimTime};
use crate::trace::Tracer;

// The shared instrumentation handles cross the shard-thread boundary:
// per-shard fibers already run on their own OS threads, so these types
// were Send + Sync all along — this pins the contract at compile time.
const _: () = {
    const fn assert_send<T: Send>() {}
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send::<Simulation>();
    assert_send_sync::<Tracer>();
    assert_send_sync::<MetricsRegistry>();
};

/// How many OS threads drive the shard fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ParMode {
    /// Run every shard to completion on the calling thread, in shard
    /// order. The reference mode: parallel modes must match its exports
    /// byte for byte.
    Single,
    /// One worker thread per shard (the default).
    PerShard,
    /// A fixed worker pool; shard `i` is owned by worker `i % n`.
    Threads(usize),
}

impl ParMode {
    /// Reads the `BISCUIT_PAR` environment variable: `0` → [`Single`],
    /// unset or empty → [`PerShard`], `n > 0` → [`Threads(n)`].
    ///
    /// [`Single`]: ParMode::Single
    /// [`PerShard`]: ParMode::PerShard
    /// [`Threads(n)`]: ParMode::Threads
    ///
    /// # Panics
    ///
    /// Panics on a non-integer value.
    pub fn from_env() -> ParMode {
        match std::env::var("BISCUIT_PAR") {
            Err(_) => ParMode::PerShard,
            Ok(v) if v.is_empty() => ParMode::PerShard,
            Ok(v) => match v.parse::<usize>() {
                Ok(0) => ParMode::Single,
                Ok(n) => ParMode::Threads(n),
                Err(_) => panic!("BISCUIT_PAR must be an integer, got {v:?}"),
            },
        }
    }

    /// Worker threads used for a fleet of `shards` kernels (0 for
    /// [`ParMode::Single`]: the calling thread drives everything).
    pub fn workers(&self, shards: usize) -> usize {
        match *self {
            ParMode::Single => 0,
            ParMode::PerShard => shards,
            ParMode::Threads(n) => n.max(1).min(shards),
        }
    }
}

/// Knobs for [`run_fleet`].
#[derive(Debug, Clone)]
pub struct ParConfig {
    /// Thread policy (defaults to [`ParMode::from_env`]).
    pub mode: ParMode,
    /// Virtual-time window size: workers advance every live shard to a
    /// common horizon, rendezvous, and open the next window. `None` runs
    /// each shard straight to drain (maximum speed, unbounded skew
    /// between shards).
    pub lookahead: Option<SimDuration>,
}

impl Default for ParConfig {
    fn default() -> Self {
        ParConfig {
            mode: ParMode::from_env(),
            lookahead: Some(SimDuration::from_millis(1)),
        }
    }
}

/// Deterministic per-shard seed: shard `i` of a fleet seeded `seed` gets
/// an independent, well-mixed RNG stream. Pure function of its inputs,
/// so fleet runs are reproducible across modes and machines.
pub fn shard_seed(seed: u64, shard: usize) -> u64 {
    splitmix64(seed ^ splitmix64(shard as u64))
}

/// SplitMix64 finalizer (same mix as the fault plan's draw function).
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

// ---------------------------------------------------------------------------
// Cross-thread ordered merge port
// ---------------------------------------------------------------------------

struct LaneState<T> {
    queue: VecDeque<T>,
    /// Open producer handles; the lane closes when this reaches zero.
    open: usize,
    /// Items already consumed from this lane (the lane's merge cursor).
    popped: u64,
}

struct PortShared<T> {
    lanes: Mutex<Vec<LaneState<T>>>,
    cond: Condvar,
}

/// Creates a cross-thread ordered merge port with one lane per shard.
/// Returns one [`PortTx`] per lane (give lane `i` to shard `i`'s
/// producer) and the single [`PortRx`] consumer.
///
/// This is the OS-thread sibling of `biscuit_host::array::merge_channel`:
/// the same canonical consumption order (sequence-major, lane-minor over
/// still-open lanes), but producers are fibers of *different* shard
/// kernels and the consumer is a real thread. Lanes are deliberately
/// unbounded — see the module docs for why bounded lanes can deadlock a
/// thread pool — so [`PortTx::send`] never blocks and never schedules
/// virtual-time events.
///
/// # Panics
///
/// Panics if `lanes` is zero.
pub fn merge_port<T>(lanes: usize) -> (Vec<PortTx<T>>, PortRx<T>) {
    assert!(lanes > 0, "merge port needs at least one lane");
    let shared = Arc::new(PortShared {
        lanes: Mutex::new(
            (0..lanes)
                .map(|_| LaneState {
                    queue: VecDeque::new(),
                    open: 1,
                    popped: 0,
                })
                .collect(),
        ),
        cond: Condvar::new(),
    });
    let txs = (0..lanes)
        .map(|lane| PortTx {
            shared: Arc::clone(&shared),
            lane,
            closed: false,
        })
        .collect();
    let rx = PortRx {
        shared,
        seq: 0,
        cursor: 0,
    };
    (txs, rx)
}

/// Producer handle for one merge-port lane. Clones share the lane; it
/// closes when the last handle closes (or drops).
pub struct PortTx<T> {
    shared: Arc<PortShared<T>>,
    lane: usize,
    closed: bool,
}

impl<T> std::fmt::Debug for PortTx<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PortTx").field("lane", &self.lane).finish()
    }
}

impl<T> Clone for PortTx<T> {
    fn clone(&self) -> Self {
        self.shared.lanes.lock()[self.lane].open += 1;
        PortTx {
            shared: Arc::clone(&self.shared),
            lane: self.lane,
            closed: false,
        }
    }
}

impl<T> PortTx<T> {
    /// Appends `item` to this lane. Never blocks (lanes are unbounded)
    /// and never touches virtual time, so it is safe to call from any
    /// shard fiber or plain thread.
    pub fn send(&self, item: T) {
        let mut lanes = self.shared.lanes.lock();
        lanes[self.lane].queue.push_back(item);
        drop(lanes);
        self.shared.cond.notify_all();
    }

    /// Releases this handle; the lane closes when the last handle is
    /// released. Dropping a handle without calling `close` releases it
    /// the same way.
    pub fn close(mut self) {
        self.release();
    }

    fn release(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        let mut lanes = self.shared.lanes.lock();
        lanes[self.lane].open -= 1;
        drop(lanes);
        self.shared.cond.notify_all();
    }
}

impl<T> Drop for PortTx<T> {
    fn drop(&mut self) {
        self.release();
    }
}

/// Consumer side of [`merge_port`]: emits `(lane, item)` pairs in the
/// canonical order — item `r` of every lane that produces one (in lane
/// order) before any lane's item `r + 1`. The order is a pure function
/// of the per-lane item counts; producer timing and thread interleaving
/// cannot change it.
pub struct PortRx<T> {
    shared: Arc<PortShared<T>>,
    /// Current merge round: the per-lane item index being emitted.
    seq: u64,
    /// Next lane to visit within the current round.
    cursor: usize,
}

impl<T> std::fmt::Debug for PortRx<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PortRx")
            .field("seq", &self.seq)
            .field("cursor", &self.cursor)
            .finish()
    }
}

impl<T> PortRx<T> {
    /// The next item in canonical merge order, or `None` once every lane
    /// closed and drained. Blocks the calling OS thread while the lane
    /// under the cursor is open but empty — an open lane *owes* its item
    /// for this round, and skipping it would make the order depend on
    /// timing.
    pub fn recv(&mut self) -> Option<(usize, T)> {
        let mut lanes = self.shared.lanes.lock();
        loop {
            let n = lanes.len();
            while self.cursor < n {
                let lane = &mut lanes[self.cursor];
                // A lane participates in round `seq` iff it consumed
                // exactly `seq` items so far and can still produce more.
                if lane.popped == self.seq {
                    if let Some(item) = lane.queue.pop_front() {
                        lane.popped += 1;
                        let l = self.cursor;
                        self.cursor += 1;
                        return Some((l, item));
                    }
                    if lane.open > 0 {
                        // Owed but not yet produced: wait, re-examine.
                        self.shared.cond.wait(&mut lanes);
                        continue;
                    }
                    // Closed and drained: out of the merge for good.
                }
                self.cursor += 1;
            }
            // Round complete. Anything left for the next round?
            if lanes.iter().all(|l| l.queue.is_empty() && l.open == 0) {
                return None;
            }
            self.seq += 1;
            self.cursor = 0;
        }
    }
}

// ---------------------------------------------------------------------------
// The fleet runner
// ---------------------------------------------------------------------------

type ShardOutcome = Result<SimReport, Box<dyn Any + Send>>;

/// Drives a fleet of independent shard kernels to completion and runs
/// `gather` concurrently on the calling thread, returning the per-shard
/// [`SimReport`]s (in shard order) and the gather result.
///
/// `gather` typically loops on a [`PortRx`] whose [`PortTx`] ends live
/// inside the shard fibers; it must return once every lane closes. In
/// [`ParMode::Single`] the shards run to completion *first* (in shard
/// order, on the calling thread) and `gather` runs after — equivalent
/// because lanes are unbounded, and byte-identical because consumption
/// order is canonical.
///
/// The shard kernels must be mutually independent: no fiber of one shard
/// may block on or wake a fiber of another. Cross-shard data flows
/// through the merge port only.
///
/// # Panics
///
/// Re-raises the first shard panic (by shard index, deterministically)
/// after all shards stopped and `gather` returned.
pub fn run_fleet<R>(
    shards: Vec<Simulation>,
    cfg: &ParConfig,
    gather: impl FnOnce() -> R,
) -> (Vec<SimReport>, R) {
    let n = shards.len();
    assert!(n > 0, "run_fleet needs at least one shard");
    let workers = cfg.mode.workers(n);

    if workers == 0 {
        // Single-threaded reference mode: shard order, straight to drain.
        let mut outcomes: Vec<ShardOutcome> = Vec::with_capacity(n);
        for sim in shards {
            outcomes.push(panic::catch_unwind(AssertUnwindSafe(|| sim.run())));
        }
        let gathered = gather();
        return (unwrap_outcomes(outcomes), gathered);
    }

    // Partition shards round-robin across workers: worker w owns shards
    // { i | i % workers == w }.
    let mut batches: Vec<Vec<(usize, Simulation)>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, sim) in shards.into_iter().enumerate() {
        batches[i % workers].push((i, sim));
    }
    let barrier = Barrier::new(workers);
    let live = AtomicUsize::new(n);
    let lookahead = cfg.lookahead;

    let (mut slots, gathered) = std::thread::scope(|scope| {
        let barrier = &barrier;
        let live = &live;
        let handles: Vec<_> = batches
            .into_iter()
            .map(|batch| scope.spawn(move || drive_batch(batch, lookahead, barrier, live)))
            .collect();
        let gathered = gather();
        let mut slots: Vec<Option<ShardOutcome>> = (0..n).map(|_| None).collect();
        for handle in handles {
            for (i, outcome) in handle.join().expect("fleet worker thread panicked") {
                slots[i] = Some(outcome);
            }
        }
        (slots, gathered)
    });

    let outcomes = slots
        .iter_mut()
        .map(|s| s.take().expect("every shard produced an outcome"))
        .collect();
    (unwrap_outcomes(outcomes), gathered)
}

/// Re-raises the first panic by shard index; otherwise unwraps reports.
fn unwrap_outcomes(outcomes: Vec<ShardOutcome>) -> Vec<SimReport> {
    if let Some(p) = outcomes.iter().position(|o| o.is_err()) {
        let payload = outcomes.into_iter().nth(p).unwrap().unwrap_err();
        panic::resume_unwind(payload);
    }
    outcomes.into_iter().map(|o| o.unwrap()).collect()
}

/// Runs one worker's shards. With a lookahead, all workers advance their
/// live shards to a shared horizon and rendezvous twice per window: once
/// after running (so the live count is stable) and once after reading it
/// (so no worker races ahead while another still reads).
fn drive_batch(
    batch: Vec<(usize, Simulation)>,
    lookahead: Option<SimDuration>,
    barrier: &Barrier,
    live: &AtomicUsize,
) -> Vec<(usize, ShardOutcome)> {
    let Some(window) = lookahead else {
        // No windows: run each shard straight to drain.
        let mut out = Vec::with_capacity(batch.len());
        for (i, sim) in batch {
            out.push((i, panic::catch_unwind(AssertUnwindSafe(|| sim.run()))));
            live.fetch_sub(1, Ordering::AcqRel);
        }
        // Other workers may still be windowless too; no barrier to keep.
        return out;
    };

    let mut running: Vec<Option<(usize, Simulation)>> = batch.into_iter().map(Some).collect();
    let mut out = Vec::with_capacity(running.len());
    let mut horizon = SimTime::ZERO + window;
    loop {
        for slot in running.iter_mut() {
            let Some((_, sim)) = slot.as_mut() else {
                continue;
            };
            let status = panic::catch_unwind(AssertUnwindSafe(|| sim.run_until(horizon)));
            let finished = match status {
                Ok(RunStatus::Paused { .. }) => None,
                // Drained or panicked: finish (re-raising any fiber
                // panic into the catch) and retire the shard.
                Ok(RunStatus::Drained) | Ok(RunStatus::Panicked) => {
                    let (i, sim) = slot.take().unwrap();
                    Some((i, panic::catch_unwind(AssertUnwindSafe(|| sim.finish()))))
                }
                // run_until itself panicked (event cap): the kernel is
                // already torn down, the payload is the outcome.
                Err(payload) => {
                    let (i, _sim) = slot.take().unwrap();
                    Some((i, Err(payload)))
                }
            };
            if let Some(done) = finished {
                out.push(done);
                live.fetch_sub(1, Ordering::AcqRel);
            }
        }
        // Two-phase rendezvous: after the first barrier no worker is
        // mutating `live`, so every worker reads the same value; the
        // second barrier keeps readers and the next window apart.
        barrier.wait();
        let all_done = live.load(Ordering::Acquire) == 0;
        barrier.wait();
        if all_done {
            return out;
        }
        horizon = horizon + window;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex as PlMutex;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_mode_workers() {
        assert_eq!(ParMode::Single.workers(8), 0);
        assert_eq!(ParMode::PerShard.workers(8), 8);
        assert_eq!(ParMode::Threads(2).workers(8), 2);
        assert_eq!(ParMode::Threads(16).workers(4), 4);
        assert_eq!(ParMode::Threads(1).workers(4), 1);
    }

    #[test]
    fn shard_seeds_are_distinct_and_stable() {
        let a = shard_seed(42, 0);
        let b = shard_seed(42, 1);
        assert_ne!(a, b);
        assert_eq!(a, shard_seed(42, 0));
        assert_ne!(shard_seed(43, 0), a);
    }

    /// The canonical merge order is a pure function of the per-lane item
    /// counts, whatever the producer thread timing. Seeded random sleeps
    /// shuffle the real interleaving across iterations; the output must
    /// never move.
    #[test]
    fn merge_port_order_is_interleaving_invariant() {
        let counts = [3usize, 1, 4, 0, 2];
        let expected = {
            // Canonical: round r emits lane l's r-th item for each lane
            // with more than r items, in lane order.
            let mut v = Vec::new();
            for round in 0..4usize {
                for (lane, &c) in counts.iter().enumerate() {
                    if round < c {
                        v.push((lane, (lane, round)));
                    }
                }
            }
            v
        };
        for trial in 0..8u64 {
            let (txs, mut rx) = merge_port::<(usize, usize)>(counts.len());
            let mut handles = Vec::new();
            for (lane, tx) in txs.into_iter().enumerate() {
                let c = counts[lane];
                handles.push(std::thread::spawn(move || {
                    let mut rng = SmallRng::seed_from_u64(trial * 31 + lane as u64);
                    for item in 0..c {
                        std::thread::sleep(std::time::Duration::from_micros(
                            rng.random_range(0..200),
                        ));
                        tx.send((lane, item));
                    }
                    tx.close();
                }));
            }
            let mut got = Vec::new();
            while let Some(pair) = rx.recv() {
                got.push(pair);
            }
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(got, expected, "trial {trial} diverged");
        }
    }

    #[test]
    fn merge_port_clone_keeps_lane_open() {
        let (txs, mut rx) = merge_port::<u32>(1);
        let tx = txs.into_iter().next().unwrap();
        let tx2 = tx.clone();
        tx.close();
        let h = std::thread::spawn(move || {
            tx2.send(5);
            drop(tx2); // implicit close
        });
        assert_eq!(rx.recv(), Some((0, 5)));
        assert_eq!(rx.recv(), None);
        h.join().unwrap();
    }

    fn fleet(n: usize, steps: u64) -> (Vec<Simulation>, PortRx<u64>) {
        let (txs, rx) = merge_port::<u64>(n);
        let mut shards = Vec::new();
        for (i, tx) in txs.into_iter().enumerate() {
            let sim = Simulation::new(shard_seed(9, i));
            sim.spawn(format!("shard{i}"), move |ctx| {
                for s in 0..steps {
                    ctx.sleep(SimDuration::from_micros(5 + i as u64));
                    tx.send(i as u64 * 1000 + s);
                }
                tx.close();
            });
            shards.push(sim);
        }
        (shards, rx)
    }

    fn run_mode(mode: ParMode, lookahead: Option<SimDuration>) -> (Vec<u64>, Vec<(u64, u64)>) {
        let (shards, mut rx) = fleet(4, 6);
        let cfg = ParConfig { mode, lookahead };
        let (reports, merged) = run_fleet(shards, &cfg, move || {
            let mut v = Vec::new();
            while let Some((_, item)) = rx.recv() {
                v.push(item);
            }
            v
        });
        for r in &reports {
            r.assert_quiescent();
        }
        let stats = reports
            .iter()
            .map(|r| (r.end_time.as_micros(), r.events_processed))
            .collect();
        (merged, stats)
    }

    /// Single mode, per-shard threads, a smaller pool, and windowed vs
    /// windowless drains all produce the same merged stream and the same
    /// per-shard reports.
    #[test]
    fn all_modes_agree() {
        let reference = run_mode(ParMode::Single, None);
        for (mode, la) in [
            (ParMode::Single, Some(SimDuration::from_micros(4))),
            (ParMode::PerShard, None),
            (ParMode::PerShard, Some(SimDuration::from_micros(4))),
            (ParMode::Threads(2), Some(SimDuration::from_micros(4))),
            (ParMode::Threads(3), Some(SimDuration::from_micros(64))),
        ] {
            assert_eq!(run_mode(mode, la), reference, "{mode:?} lookahead {la:?}");
        }
    }

    #[test]
    fn fleet_shard_panic_propagates_deterministically() {
        for mode in [ParMode::Single, ParMode::PerShard, ParMode::Threads(2)] {
            let (txs, mut rx) = merge_port::<u64>(3);
            let mut shards = Vec::new();
            for (i, tx) in txs.into_iter().enumerate() {
                let sim = Simulation::new(1);
                sim.spawn(format!("shard{i}"), move |ctx| {
                    ctx.sleep(SimDuration::from_micros(10));
                    if i == 1 {
                        panic!("shard one exploded");
                    }
                    tx.send(i as u64);
                    tx.close();
                });
                shards.push(sim);
            }
            let cfg = ParConfig {
                mode,
                lookahead: Some(SimDuration::from_micros(8)),
            };
            let err = panic::catch_unwind(AssertUnwindSafe(|| {
                run_fleet(shards, &cfg, move || {
                    let mut v = Vec::new();
                    while let Some(p) = rx.recv() {
                        v.push(p);
                    }
                    v
                })
            }))
            .expect_err("shard panic must propagate");
            let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
            assert_eq!(msg, "shard one exploded", "{mode:?}");
        }
    }

    /// The gather closure really does run concurrently with the workers
    /// in parallel mode: a consumer that only releases the producers
    /// after seeing the first item would deadlock otherwise.
    #[test]
    fn gather_runs_concurrently_with_workers() {
        let (txs, mut rx) = merge_port::<u64>(2);
        let seen = Arc::new(AtomicU64::new(0));
        let mut shards = Vec::new();
        for (i, tx) in txs.into_iter().enumerate() {
            let sim = Simulation::new(0);
            sim.spawn(format!("s{i}"), move |ctx| {
                for k in 0..50u64 {
                    ctx.sleep(SimDuration::from_micros(1));
                    tx.send(k);
                }
                tx.close();
            });
            shards.push(sim);
        }
        let cfg = ParConfig {
            mode: ParMode::PerShard,
            lookahead: Some(SimDuration::from_micros(10)),
        };
        let seen2 = Arc::clone(&seen);
        let (_reports, total) = run_fleet(shards, &cfg, move || {
            let mut total = 0u64;
            while let Some((_, v)) = rx.recv() {
                seen2.fetch_add(1, Ordering::Relaxed);
                total += v;
            }
            total
        });
        assert_eq!(seen.load(Ordering::Relaxed), 100);
        assert_eq!(total, 2 * (0..50).sum::<u64>());
    }

    /// run_fleet with more shards than worker threads must not deadlock
    /// even when one shard produces far more than the others (the
    /// unbounded-lane design point).
    #[test]
    fn skewed_lanes_with_small_pool_complete() {
        let (txs, mut rx) = merge_port::<u64>(4);
        let mut shards = Vec::new();
        for (i, tx) in txs.into_iter().enumerate() {
            let sim = Simulation::new(0);
            let items = if i == 3 { 200u64 } else { 1 };
            sim.spawn(format!("s{i}"), move |ctx| {
                for k in 0..items {
                    ctx.sleep(SimDuration::from_micros(1));
                    tx.send(k);
                }
                tx.close();
            });
            shards.push(sim);
        }
        let cfg = ParConfig {
            mode: ParMode::Threads(2),
            lookahead: Some(SimDuration::from_micros(3)),
        };
        let (_reports, count) = run_fleet(shards, &cfg, move || {
            let mut count = 0u64;
            while rx.recv().is_some() {
                count += 1;
            }
            count
        });
        assert_eq!(count, 203);
    }

    /// BISCUIT_PAR parsing. Runs in one test (not four) because env vars
    /// are process-global and tests run concurrently.
    #[test]
    fn par_mode_from_env_parses() {
        // Not using std::env::set_var (unsafe in edition 2021 threads);
        // exercise the parse paths via the match arms directly.
        let parse = |v: Option<&str>| match v {
            None => ParMode::PerShard,
            Some("") => ParMode::PerShard,
            Some(s) => match s.parse::<usize>() {
                Ok(0) => ParMode::Single,
                Ok(n) => ParMode::Threads(n),
                Err(_) => panic!("bad"),
            },
        };
        assert_eq!(parse(None), ParMode::PerShard);
        assert_eq!(parse(Some("")), ParMode::PerShard);
        assert_eq!(parse(Some("0")), ParMode::Single);
        assert_eq!(parse(Some("3")), ParMode::Threads(3));
    }

    /// Windowed parallel execution preserves each shard kernel's internal
    /// schedule: log the per-shard (time, value) stream and compare to
    /// the single-threaded run.
    #[test]
    fn per_shard_schedules_are_mode_invariant() {
        fn run(mode: ParMode) -> Vec<Vec<(u64, u64)>> {
            let logs: Vec<Arc<PlMutex<Vec<(u64, u64)>>>> =
                (0..3).map(|_| Arc::new(PlMutex::new(Vec::new()))).collect();
            let (txs, mut rx) = merge_port::<()>(3);
            let mut shards = Vec::new();
            for (i, tx) in txs.into_iter().enumerate() {
                let sim = Simulation::new(shard_seed(5, i));
                let log = Arc::clone(&logs[i]);
                sim.spawn(format!("s{i}"), move |ctx| {
                    for _ in 0..10 {
                        let jitter = ctx.with_rng(|r| r.random_range(1..5u64));
                        ctx.sleep(SimDuration::from_micros(jitter));
                        log.lock().push((ctx.now().as_micros(), jitter));
                    }
                    tx.close();
                });
                shards.push(sim);
            }
            let cfg = ParConfig {
                mode,
                lookahead: Some(SimDuration::from_micros(7)),
            };
            run_fleet(shards, &cfg, move || while rx.recv().is_some() {});
            logs.iter().map(|l| l.lock().clone()).collect()
        }
        assert_eq!(run(ParMode::Single), run(ParMode::PerShard));
    }

    /// Fused chain execution composes with PDES lookahead windows: a chain
    /// whose completion lies beyond the current window barrier de-fuses and
    /// parks exactly like an unfused sleep, so every `(mode, fuse)` combo
    /// yields the same per-shard observation stream.
    #[test]
    fn fused_chains_respect_window_barriers_across_modes() {
        use crate::fuse::{ChainDesc, StageKind};

        fn run(mode: ParMode, fuse: bool) -> Vec<Vec<(u64, u64)>> {
            let logs: Vec<Arc<PlMutex<Vec<(u64, u64)>>>> =
                (0..3).map(|_| Arc::new(PlMutex::new(Vec::new()))).collect();
            let (txs, mut rx) = merge_port::<()>(3);
            let mut shards = Vec::new();
            for (i, tx) in txs.into_iter().enumerate() {
                let sim = Simulation::new(shard_seed(9, i));
                sim.set_fuse(fuse);
                let log = Arc::clone(&logs[i]);
                sim.spawn(format!("s{i}"), move |ctx| {
                    for pass in 0..8u64 {
                        // Chain lengths straddle the 7us lookahead window,
                        // so some hops fuse and some must park on the
                        // barrier and resume in a later window.
                        let d = SimDuration::from_micros(2 + (pass + i as u64) % 9);
                        let mut chain = ChainDesc::new();
                        let t = ctx.now();
                        chain.push(StageKind::NandSense, t, t + d);
                        chain.push(StageKind::BusTransfer, t + d, t + d + d);
                        ctx.run_chain(chain);
                        log.lock().push((ctx.now().as_micros(), pass));
                    }
                    tx.close();
                });
                shards.push(sim);
            }
            let cfg = ParConfig {
                mode,
                lookahead: Some(SimDuration::from_micros(7)),
            };
            run_fleet(shards, &cfg, move || while rx.recv().is_some() {});
            logs.iter().map(|l| l.lock().clone()).collect()
        }

        let reference = run(ParMode::Single, false);
        for mode in [ParMode::Single, ParMode::PerShard, ParMode::Threads(2)] {
            for fuse in [false, true] {
                assert_eq!(run(mode, fuse), reference, "{mode:?}/fuse={fuse}");
            }
        }
    }
}
