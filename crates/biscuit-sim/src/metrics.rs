//! Aggregate, deterministic metrics for the simulation.
//!
//! Where [`crate::trace`] answers *"what happened, in order?"* with an event
//! stream, this module answers *"how much, in total?"* with an aggregate
//! [`MetricsRegistry`]: monotonic [`Counter`]s, [`Gauge`]s with high-water
//! marks, and log-bucketed [`Histogram`]s with `p50/p95/p99/p99.9/max`. Every layer
//! of the Biscuit stack registers instruments against the per-simulation
//! registry — per-channel NAND operations and busy time, channel-bus and
//! PCIe-link bytes, device-core scheduling, port traffic and queue occupancy,
//! FTL lookups, pattern-matcher hits, and DB-planner offload verdicts.
//!
//! A [`MetricsSnapshot`] exports two ways, both byte-deterministic for a
//! given seed:
//!
//! - [`MetricsSnapshot::to_json`] — a stable JSON document keyed by metric
//!   name + labels (consumed by the `BENCH_<id>.json` reports and the
//!   regression gate in `scripts/bench_check.sh`);
//! - [`MetricsSnapshot::to_prometheus`] — the Prometheus text exposition
//!   format, for humans and future live endpoints.
//!
//! Collection is **off by default** and costs one relaxed atomic load per
//! instrumentation site when disabled — instruments share the registry's
//! enabled flag, and every recording method checks it first. Enable it per
//! simulation:
//!
//! ```
//! use biscuit_sim::{Simulation, time::SimDuration};
//!
//! let sim = Simulation::new(0);
//! sim.enable_metrics();
//! let c = sim.metrics().counter("demo_total", &[("stage", "early")]);
//! sim.spawn("worker", move |ctx| {
//!     ctx.sleep(SimDuration::from_micros(5));
//!     c.inc();
//! });
//! let report = sim.run();
//! assert_eq!(report.metrics.counter_value("demo_total", &[("stage", "early")]), Some(1));
//! assert!(report.metrics.to_json().starts_with("{\"horizon_ps\":"));
//! ```
//!
//! Naming follows Prometheus conventions (`docs/METRICS.md` has the full
//! taxonomy): counters end in `_total`, virtual-time totals in `_ps_total`,
//! and duration histograms in `_span_ps`. Busy-time counters ending in
//! `_busy_ps_total` additionally export a derived `*_utilization` sample
//! (busy time over the simulation horizon).

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::time::SimTime;
use crate::trace::escape_json_into;

/// Number of power-of-two histogram buckets (`u64` bit widths 0..=64).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Configuration hook for examples and harnesses: reads the
/// `BISCUIT_METRICS` environment variable.
///
/// When set and non-empty, the value names the output path for the exported
/// snapshot — a `.json` suffix selects [`MetricsSnapshot::to_json`],
/// anything else the Prometheus text format — so
/// `BISCUIT_METRICS=metrics.json cargo run --example quickstart` both
/// enables collection and names the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsConfig {
    /// Output path for the exported snapshot.
    pub path: String,
}

impl MetricsConfig {
    /// Returns a config when `BISCUIT_METRICS` is set and non-empty.
    pub fn from_env() -> Option<Self> {
        match std::env::var("BISCUIT_METRICS") {
            Ok(v) if !v.is_empty() => Some(MetricsConfig { path: v }),
            _ => None,
        }
    }

    /// Writes `snapshot` to the configured path — JSON when the path ends in
    /// `.json`, Prometheus text otherwise.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn write(&self, snapshot: &MetricsSnapshot) -> std::io::Result<()> {
        let body = if self.path.ends_with(".json") {
            snapshot.to_json()
        } else {
            snapshot.to_prometheus()
        };
        std::fs::write(&self.path, body)
    }
}

// ---------------------------------------------------------------------------
// Histogram core (shared with `stats::LatencyStats` bounded mode)
// ---------------------------------------------------------------------------

/// Index of the power-of-two bucket holding `v`: the number of significant
/// bits, so bucket `i` covers `[2^(i-1), 2^i - 1]` (bucket 0 holds only 0).
#[inline]
pub(crate) fn bucket_index(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// Inclusive upper bound of bucket `i`.
#[inline]
pub(crate) fn bucket_upper(i: usize) -> u64 {
    if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// The single summary-statistics implementation behind both
/// [`Histogram`] and the bounded-memory mode of
/// [`crate::stats::LatencyStats`]: a fixed array of power-of-two buckets
/// plus exact count, sum, sum of squares, min, and max.
///
/// Memory is constant (65 buckets) regardless of sample count; percentiles
/// are nearest-rank over the buckets, clamped to the observed `[min, max]`
/// range so single-valued distributions report exactly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramData {
    /// Samples recorded.
    pub count: u64,
    /// Exact sum of all samples.
    pub sum: u128,
    /// Exact sum of squared samples (for standard deviation).
    pub sum_sq: u128,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample (0 when empty).
    pub max: u64,
    /// Per-bucket counts; bucket `i` covers values of `i` significant bits.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
}

impl Default for HistogramData {
    fn default() -> Self {
        HistogramData {
            count: 0,
            sum: 0,
            sum_sq: 0,
            min: 0,
            max: 0,
            buckets: [0; HISTOGRAM_BUCKETS],
        }
    }
}

impl HistogramData {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v as u128;
        self.sum_sq += (v as u128) * (v as u128);
        self.buckets[bucket_index(v)] += 1;
    }

    /// Arithmetic mean, rounded down (0 when empty).
    pub fn mean(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            (self.sum / self.count as u128) as u64
        }
    }

    /// The `p`-th percentile (0.0–100.0) by nearest rank over the buckets:
    /// the upper bound of the bucket holding the ranked sample, clamped to
    /// the observed `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil() as u64;
        let rank = rank.clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Sample standard deviation (0 for fewer than two samples), exact from
    /// the running sums.
    pub fn stddev(&self) -> f64 {
        if self.count < 2 {
            return 0.0;
        }
        let n = self.count as f64;
        let mean = self.sum as f64 / n;
        let var = (self.sum_sq as f64 / n - mean * mean) * n / (n - 1.0);
        var.max(0.0).sqrt()
    }
}

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

/// A monotonic counter. Cheap to clone; recording is a no-op costing one
/// relaxed atomic load while the owning registry is disabled.
#[derive(Debug, Clone)]
pub struct Counter {
    enabled: Arc<AtomicBool>,
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge holding the latest value plus its high-water mark. Negative
/// values are supported (`i64`).
#[derive(Debug, Clone)]
pub struct Gauge {
    enabled: Arc<AtomicBool>,
    value: Arc<AtomicI64>,
    high: Arc<AtomicI64>,
}

impl Gauge {
    /// Sets the gauge to `v`, updating the high-water mark.
    #[inline]
    pub fn set(&self, v: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.value.store(v, Ordering::Relaxed);
            self.high.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Adds `delta` (may be negative), updating the high-water mark.
    #[inline]
    pub fn add(&self, delta: i64) {
        if self.enabled.load(Ordering::Relaxed) {
            let v = self.value.fetch_add(delta, Ordering::Relaxed) + delta;
            self.high.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Highest value ever set (at least 0).
    pub fn high_water(&self) -> i64 {
        self.high.load(Ordering::Relaxed)
    }
}

/// A log-bucketed histogram over `u64` samples (virtual-time picoseconds,
/// byte counts, depths). Summaries come from the shared [`HistogramData`]
/// core; recording takes an uncontended mutex when enabled and costs one
/// relaxed atomic load when disabled.
#[derive(Debug, Clone)]
pub struct Histogram {
    enabled: Arc<AtomicBool>,
    data: Arc<Mutex<HistogramData>>,
}

impl Histogram {
    /// Records one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        if self.enabled.load(Ordering::Relaxed) {
            self.data.lock().record(v);
        }
    }

    /// A copy of the current summary state.
    pub fn data(&self) -> HistogramData {
        self.data.lock().clone()
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Debug)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

#[derive(Debug)]
struct Registered {
    name: String,
    labels: Vec<(String, String)>,
    instrument: Instrument,
}

#[derive(Debug)]
struct RegistryInner {
    enabled: Arc<AtomicBool>,
    horizon_ps: AtomicU64,
    /// Keyed by the rendered `name{label="v",...}` identity — the same
    /// ordering the exports use, so iteration is deterministic.
    metrics: Mutex<BTreeMap<String, Registered>>,
}

/// Renders the canonical `name{k="v",...}` identity of a metric. Labels are
/// sorted by key, so the identity is order-independent.
fn render_key(name: &str, labels: &[(&str, &str)]) -> String {
    let mut sorted: Vec<(&str, &str)> = labels.to_vec();
    sorted.sort_unstable();
    let mut key = String::from(name);
    if !sorted.is_empty() {
        key.push('{');
        for (i, (k, v)) in sorted.iter().enumerate() {
            if i > 0 {
                key.push(',');
            }
            let _ = write!(key, "{k}=\"{v}\"");
        }
        key.push('}');
    }
    key
}

/// A cheaply cloneable handle to a simulation's metrics registry.
///
/// Every [`crate::Simulation`] owns one (disabled by default); library code
/// shares it by clone through `set_metrics`/`attach_metrics` methods, which
/// register their instruments up front. Instruments keep working after the
/// registry is enabled or disabled because they share its flag.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl Default for RegistryInner {
    fn default() -> Self {
        RegistryInner {
            enabled: Arc::new(AtomicBool::new(false)),
            horizon_ps: AtomicU64::new(0),
            metrics: Mutex::new(BTreeMap::new()),
        }
    }
}

impl MetricsRegistry {
    /// Creates a disabled registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts collection. Already-registered instruments begin recording.
    pub fn enable(&self) {
        self.inner.enabled.store(true, Ordering::Release);
    }

    /// Stops collection (recorded values are kept).
    pub fn disable(&self) {
        self.inner.enabled.store(false, Ordering::Release);
    }

    /// True while instruments record.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Registers (or retrieves) the monotonic counter `name` with `labels`.
    ///
    /// # Panics
    ///
    /// Panics if the same name + labels was registered as a different kind.
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = render_key(name, labels);
        let mut metrics = self.inner.metrics.lock();
        let slot = metrics.entry(key).or_insert_with(|| Registered {
            name: name.to_string(),
            labels: owned_labels(labels),
            instrument: Instrument::Counter(Counter {
                enabled: Arc::clone(&self.inner.enabled),
                value: Arc::new(AtomicU64::new(0)),
            }),
        });
        match &slot.instrument {
            Instrument::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered as a different kind"),
        }
    }

    /// Registers (or retrieves) the gauge `name` with `labels`.
    ///
    /// # Panics
    ///
    /// Panics if the same name + labels was registered as a different kind.
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = render_key(name, labels);
        let mut metrics = self.inner.metrics.lock();
        let slot = metrics.entry(key).or_insert_with(|| Registered {
            name: name.to_string(),
            labels: owned_labels(labels),
            instrument: Instrument::Gauge(Gauge {
                enabled: Arc::clone(&self.inner.enabled),
                value: Arc::new(AtomicI64::new(0)),
                high: Arc::new(AtomicI64::new(0)),
            }),
        });
        match &slot.instrument {
            Instrument::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered as a different kind"),
        }
    }

    /// Registers (or retrieves) the log-bucketed histogram `name` with
    /// `labels`.
    ///
    /// # Panics
    ///
    /// Panics if the same name + labels was registered as a different kind.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let key = render_key(name, labels);
        let mut metrics = self.inner.metrics.lock();
        let slot = metrics.entry(key).or_insert_with(|| Registered {
            name: name.to_string(),
            labels: owned_labels(labels),
            instrument: Instrument::Histogram(Histogram {
                enabled: Arc::clone(&self.inner.enabled),
                data: Arc::new(Mutex::new(HistogramData::new())),
            }),
        });
        match &slot.instrument {
            Instrument::Histogram(h) => h.clone(),
            _ => panic!("metric {name:?} already registered as a different kind"),
        }
    }

    /// Sets the horizon (simulation end time) used for derived utilization
    /// samples. The kernel calls this when a run completes.
    pub fn set_horizon(&self, t: SimTime) {
        self.inner.horizon_ps.store(t.as_ps(), Ordering::Relaxed);
    }

    /// Snapshots every registered instrument into an immutable, sorted
    /// [`MetricsSnapshot`]. Returns an empty snapshot while disabled.
    pub fn snapshot(&self) -> MetricsSnapshot {
        if !self.is_enabled() {
            return MetricsSnapshot::default();
        }
        let metrics = self.inner.metrics.lock();
        let samples = metrics
            .iter()
            .map(|(key, reg)| MetricSample {
                key: key.clone(),
                name: reg.name.clone(),
                labels: reg.labels.clone(),
                value: match &reg.instrument {
                    Instrument::Counter(c) => SampleValue::Counter(c.get()),
                    Instrument::Gauge(g) => SampleValue::Gauge {
                        value: g.get(),
                        high_water: g.high_water(),
                    },
                    Instrument::Histogram(h) => SampleValue::Histogram(h.data()),
                },
            })
            .collect();
        MetricsSnapshot {
            horizon_ps: self.inner.horizon_ps.load(Ordering::Relaxed),
            samples,
        }
    }
}

fn owned_labels(labels: &[(&str, &str)]) -> Vec<(String, String)> {
    let mut out: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| (k.to_string(), v.to_string()))
        .collect();
    out.sort_unstable();
    out
}

// ---------------------------------------------------------------------------
// Snapshot + exports
// ---------------------------------------------------------------------------

/// The recorded value of one instrument at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SampleValue {
    /// Monotonic counter value.
    Counter(u64),
    /// Gauge value and its high-water mark.
    Gauge {
        /// Latest value set.
        value: i64,
        /// Highest value ever set.
        high_water: i64,
    },
    /// Full histogram summary state.
    Histogram(HistogramData),
}

/// One instrument's identity and value at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricSample {
    /// Canonical `name{label="v",...}` identity.
    pub key: String,
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// Recorded value.
    pub value: SampleValue,
}

/// An immutable snapshot of every registered instrument, sorted by
/// canonical key — the unit of export and comparison.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Simulation end time in picoseconds (0 if never set), the denominator
    /// for derived utilization samples.
    pub horizon_ps: u64,
    /// Samples sorted by canonical key.
    pub samples: Vec<MetricSample>,
}

/// Renders `busy / horizon` as a fixed six-decimal fraction without going
/// through float formatting, so exports stay byte-deterministic.
fn utilization_fixed(busy_ps: u64, horizon_ps: u64) -> String {
    if horizon_ps == 0 {
        return "0.000000".to_string();
    }
    let scaled = (busy_ps as u128 * 1_000_000) / horizon_ps as u128;
    let scaled = scaled.min(1_000_000) as u64; // clamp parallel banks to 1.0
    format!("{}.{:06}", scaled / 1_000_000, scaled % 1_000_000)
}

impl MetricsSnapshot {
    /// True when nothing was recorded (registry disabled or no instruments).
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Looks up a sample by name and labels (label order irrelevant).
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<&MetricSample> {
        let key = render_key(name, labels);
        self.samples.iter().find(|s| s.key == key)
    }

    /// Convenience: the value of a counter sample, if present.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<u64> {
        match self.get(name, labels)?.value {
            SampleValue::Counter(v) => Some(v),
            _ => None,
        }
    }

    /// A copy of the snapshot without samples whose *name* is in `names`.
    /// Used by determinism comparisons to drop metrics that legitimately
    /// vary with an engine policy — e.g. the dispatch-path meters in
    /// [`crate::fuse::VARIANT_METRICS`], which differ across
    /// `BISCUIT_FUSE` settings while everything else stays byte-identical.
    pub fn without(&self, names: &[&str]) -> MetricsSnapshot {
        MetricsSnapshot {
            horizon_ps: self.horizon_ps,
            samples: self
                .samples
                .iter()
                .filter(|s| !names.contains(&s.name.as_str()))
                .cloned()
                .collect(),
        }
    }

    /// Sum of all counters with the given name across every label set.
    pub fn counter_sum(&self, name: &str) -> u64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .map(|s| match s.value {
                SampleValue::Counter(v) => v,
                _ => 0,
            })
            .sum()
    }

    /// Exports the stable JSON snapshot: an object with `horizon_ps` and a
    /// `metrics` array sorted by canonical key. Counters carry `value`;
    /// gauges `value` + `high_water`; histograms `count/sum/min/max/
    /// mean/p50/p95/p99/p999` plus the nonzero `buckets` as `[upper_bound,
    /// count]` pairs. Byte-deterministic: integer arithmetic only.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + self.samples.len() * 96);
        let _ = write!(out, "{{\"horizon_ps\":{},\"metrics\":[", self.horizon_ps);
        for (i, s) in self.samples.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            escape_json_into(&mut out, &s.name);
            out.push_str("\",\"labels\":{");
            for (j, (k, v)) in s.labels.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('"');
                escape_json_into(&mut out, k);
                out.push_str("\":\"");
                escape_json_into(&mut out, v);
                out.push('"');
            }
            out.push_str("},");
            match &s.value {
                SampleValue::Counter(v) => {
                    let _ = write!(out, "\"type\":\"counter\",\"value\":{v}");
                }
                SampleValue::Gauge { value, high_water } => {
                    let _ = write!(
                        out,
                        "\"type\":\"gauge\",\"value\":{value},\"high_water\":{high_water}"
                    );
                }
                SampleValue::Histogram(h) => {
                    let _ = write!(
                        out,
                        "\"type\":\"histogram\",\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\
                         \"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"p999\":{},\"buckets\":[",
                        h.count,
                        h.sum,
                        h.min,
                        h.max,
                        h.mean(),
                        h.percentile(50.0),
                        h.percentile(95.0),
                        h.percentile(99.0),
                        h.percentile(99.9)
                    );
                    let mut first = true;
                    for (b, &n) in h.buckets.iter().enumerate() {
                        if n > 0 {
                            if !first {
                                out.push(',');
                            }
                            first = false;
                            let _ = write!(out, "[{},{}]", bucket_upper(b), n);
                        }
                    }
                    out.push(']');
                }
            }
            out.push('}');
        }
        // Derived utilization samples for busy-time counters.
        for s in &self.samples {
            if let (Some(base), SampleValue::Counter(busy)) =
                (s.name.strip_suffix("_busy_ps_total"), &s.value)
            {
                if !self.samples.is_empty() {
                    out.push(',');
                }
                out.push_str("{\"name\":\"");
                escape_json_into(&mut out, &format!("{base}_utilization"));
                out.push_str("\",\"labels\":{");
                for (j, (k, v)) in s.labels.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    escape_json_into(&mut out, k);
                    out.push_str("\":\"");
                    escape_json_into(&mut out, v);
                    out.push('"');
                }
                let _ = write!(
                    out,
                    "}},\"type\":\"gauge\",\"value\":{}}}",
                    utilization_fixed(*busy, self.horizon_ps)
                );
            }
        }
        out.push_str("]}");
        out
    }

    /// Exports the Prometheus text exposition format. Histograms use the
    /// conventional `_bucket{le=...}` / `_sum` / `_count` series plus
    /// non-standard-but-useful `_p50/_p95/_p99/_p999` gauges; gauges export their
    /// value and a `<name>_high_water` companion; `*_busy_ps_total` counters
    /// also yield a derived `*_utilization` gauge. Output order follows the
    /// sorted canonical keys, so it is byte-deterministic.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(256 + self.samples.len() * 128);
        let mut typed: BTreeMap<&str, &str> = BTreeMap::new();
        for s in &self.samples {
            let kind = match s.value {
                SampleValue::Counter(_) => "counter",
                SampleValue::Gauge { .. } => "gauge",
                SampleValue::Histogram(_) => "histogram",
            };
            typed.insert(s.name.as_str(), kind);
        }
        let mut last_name = "";
        for s in &self.samples {
            if s.name != last_name {
                let _ = writeln!(out, "# TYPE {} {}", s.name, typed[s.name.as_str()]);
                last_name = &s.name;
            }
            let labels = prom_labels(&s.labels, None);
            match &s.value {
                SampleValue::Counter(v) => {
                    let _ = writeln!(out, "{}{} {}", s.name, labels, v);
                }
                SampleValue::Gauge { value, high_water } => {
                    let _ = writeln!(out, "{}{} {}", s.name, labels, value);
                    let _ = writeln!(out, "{}_high_water{} {}", s.name, labels, high_water);
                }
                SampleValue::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (b, &n) in h.buckets.iter().enumerate() {
                        if n > 0 {
                            cumulative += n;
                            let le = bucket_upper(b).to_string();
                            let with_le = prom_labels(&s.labels, Some(("le", &le)));
                            let _ = writeln!(out, "{}_bucket{} {}", s.name, with_le, cumulative);
                        }
                    }
                    let inf = prom_labels(&s.labels, Some(("le", "+Inf")));
                    let _ = writeln!(out, "{}_bucket{} {}", s.name, inf, h.count);
                    let _ = writeln!(out, "{}_sum{} {}", s.name, labels, h.sum);
                    let _ = writeln!(out, "{}_count{} {}", s.name, labels, h.count);
                    for (suffix, p) in [("p50", 50.0), ("p95", 95.0), ("p99", 99.0), ("p999", 99.9)]
                    {
                        let _ = writeln!(out, "{}_{suffix}{} {}", s.name, labels, h.percentile(p));
                    }
                }
            }
        }
        let _ = writeln!(out, "# TYPE sim_horizon_ps gauge");
        let _ = writeln!(out, "sim_horizon_ps {}", self.horizon_ps);
        for s in &self.samples {
            if let (Some(base), SampleValue::Counter(busy)) =
                (s.name.strip_suffix("_busy_ps_total"), &s.value)
            {
                let _ = writeln!(out, "# TYPE {base}_utilization gauge");
                let _ = writeln!(
                    out,
                    "{base}_utilization{} {}",
                    prom_labels(&s.labels, None),
                    utilization_fixed(*busy, self.horizon_ps)
                );
            }
        }
        out
    }

    /// Writes [`MetricsSnapshot::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn write_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

fn prom_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    for (k, v) in labels {
        if !first {
            out.push(',');
        }
        first = false;
        let _ = write!(out, "{k}=\"{v}\"");
    }
    if let Some((k, v)) = extra {
        if !first {
            out.push(',');
        }
        let _ = write!(out, "{k}=\"{v}\"");
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_records_nothing() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("c_total", &[]);
        let g = reg.gauge("g", &[]);
        let h = reg.histogram("h_span_ps", &[]);
        c.inc();
        g.set(5);
        h.record(100);
        assert_eq!(c.get(), 0);
        assert_eq!(g.get(), 0);
        assert_eq!(h.data().count, 0);
        assert!(reg.snapshot().is_empty(), "disabled snapshot is empty");
    }

    #[test]
    fn counter_accumulates() {
        let reg = MetricsRegistry::new();
        reg.enable();
        let c = reg.counter("ops_total", &[("channel", "3")]);
        c.inc();
        c.add(41);
        assert_eq!(c.get(), 42);
        // Re-registration returns the same underlying cell.
        let again = reg.counter("ops_total", &[("channel", "3")]);
        again.inc();
        assert_eq!(c.get(), 43);
        assert_eq!(
            reg.snapshot()
                .counter_value("ops_total", &[("channel", "3")]),
            Some(43)
        );
    }

    #[test]
    fn gauge_tracks_high_water() {
        let reg = MetricsRegistry::new();
        reg.enable();
        let g = reg.gauge("depth", &[]);
        g.set(3);
        g.add(4);
        g.add(-6);
        assert_eq!(g.get(), 1);
        assert_eq!(g.high_water(), 7);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        // Bucket i covers [2^(i-1), 2^i - 1]; bucket 0 holds only zero.
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(10), 1023);
        assert_eq!(bucket_upper(64), u64::MAX);

        let mut h = HistogramData::new();
        for v in [1u64, 2, 3, 4, 1023, 1024] {
            h.record(v);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[2], 2); // 2 and 3
        assert_eq!(h.buckets[3], 1); // 4
        assert_eq!(h.buckets[10], 1); // 1023
        assert_eq!(h.buckets[11], 1); // 1024
        assert_eq!(h.min, 1);
        assert_eq!(h.max, 1024);
    }

    #[test]
    fn histogram_percentiles_clamp_to_observed_range() {
        let mut h = HistogramData::new();
        for _ in 0..100 {
            h.record(700);
        }
        // All samples share one bucket; the clamp reports the exact value.
        assert_eq!(h.percentile(50.0), 700);
        assert_eq!(h.percentile(99.0), 700);
        h.record(100_000);
        // With a larger max the clamp no longer tightens the bucket bound:
        // p50 reports the upper edge of 700's bucket ([512, 1023]).
        assert_eq!(h.percentile(50.0), 1023);
        assert_eq!(h.percentile(100.0), 100_000);
        assert_eq!(h.mean(), (700 * 100 + 100_000) / 101);
    }

    #[test]
    fn histogram_stddev_is_exact() {
        let mut h = HistogramData::new();
        for v in [2u64, 4, 4, 4, 5, 5, 7, 9] {
            h.record(v);
        }
        // Known dataset: population stddev 2, sample stddev ~2.138.
        assert!((h.stddev() - 2.13809).abs() < 1e-4);
        assert_eq!(HistogramData::new().stddev(), 0.0);
    }

    #[test]
    fn identity_is_label_order_independent() {
        assert_eq!(
            render_key("m", &[("b", "2"), ("a", "1")]),
            render_key("m", &[("a", "1"), ("b", "2")])
        );
        assert_eq!(render_key("m", &[]), "m");
        assert_eq!(render_key("m", &[("k", "v")]), "m{k=\"v\"}");
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x", &[]);
        reg.gauge("x", &[]);
    }

    #[test]
    fn json_export_is_sorted_and_deterministic() {
        fn build() -> String {
            let reg = MetricsRegistry::new();
            reg.enable();
            reg.counter("z_total", &[]).add(9);
            reg.counter("a_total", &[("ch", "1")]).add(1);
            reg.counter("a_total", &[("ch", "0")]).add(2);
            let h = reg.histogram("lat_span_ps", &[]);
            h.record(10);
            h.record(1000);
            reg.gauge("depth", &[]).set(4);
            reg.set_horizon(SimTime::from_us(10));
            reg.snapshot().to_json()
        }
        let json = build();
        assert_eq!(json, build(), "same inputs export byte-identically");
        let a0 = json.find("\"ch\":\"0\"").unwrap();
        let a1 = json.find("\"ch\":\"1\"").unwrap();
        assert!(a0 < a1, "samples sorted by canonical key");
        assert!(json.starts_with("{\"horizon_ps\":10000000,"));
        assert!(json.contains("\"type\":\"histogram\",\"count\":2"));
        assert!(json.contains("\"high_water\":4"));
    }

    #[test]
    fn utilization_derived_from_busy_counters() {
        let reg = MetricsRegistry::new();
        reg.enable();
        reg.counter("link_busy_ps_total", &[("dir", "to_host")])
            .add(250_000);
        reg.set_horizon(SimTime::from_ps(1_000_000));
        let json = reg.snapshot().to_json();
        assert!(
            json.contains("\"name\":\"link_utilization\""),
            "derived sample present: {json}"
        );
        assert!(json.contains("\"value\":0.250000"));
        let prom = reg.snapshot().to_prometheus();
        assert!(prom.contains("link_utilization{dir=\"to_host\"} 0.250000"));
        assert_eq!(utilization_fixed(5, 0), "0.000000");
        assert_eq!(utilization_fixed(2_000, 1_000), "1.000000", "clamped");
    }

    #[test]
    fn prometheus_export_shape() {
        let reg = MetricsRegistry::new();
        reg.enable();
        reg.counter("ops_total", &[("ch", "0")]).add(3);
        let h = reg.histogram("lat_span_ps", &[]);
        for v in [1u64, 2, 3, 900] {
            h.record(v);
        }
        let prom = reg.snapshot().to_prometheus();
        assert!(prom.contains("# TYPE ops_total counter"));
        assert!(prom.contains("ops_total{ch=\"0\"} 3"));
        assert!(prom.contains("# TYPE lat_span_ps histogram"));
        assert!(prom.contains("lat_span_ps_bucket{le=\"+Inf\"} 4"));
        assert!(prom.contains("lat_span_ps_sum 906"));
        assert!(prom.contains("lat_span_ps_count 4"));
        assert!(prom.contains("sim_horizon_ps 0"));
        // Cumulative bucket counts.
        assert!(prom.contains("lat_span_ps_bucket{le=\"1\"} 1"));
        assert!(prom.contains("lat_span_ps_bucket{le=\"3\"} 3"));
    }
}
