//! Time-shared hardware resources: FCFS bandwidth shapers and server banks.
//!
//! These model the serial hardware resources in the Biscuit platform — the
//! PCIe link, individual flash channels, device CPU cores, pattern-matcher
//! IPs — as first-come-first-served servers whose service time is derived
//! from a byte count and a rate (plus an optional fixed per-operation cost).
//! Contention and queueing emerge naturally from the `avail` bookkeeping.

use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;

use crate::kernel::Ctx;
use crate::metrics::{self, MetricsRegistry};
use crate::time::{SimDuration, SimTime};
use crate::trace::{TraceEvent, Tracer};

/// Throughput instruments for one labeled FCFS resource (a shaper, or one
/// server of a bank): operation and byte counters, busy virtual time, and a
/// service-span histogram. See `docs/METRICS.md` for the naming scheme.
#[derive(Debug)]
struct ResourceInstruments {
    ops: metrics::Counter,
    bytes: metrics::Counter,
    busy_ps: metrics::Counter,
    span_ps: metrics::Histogram,
}

impl ResourceInstruments {
    fn new(registry: &MetricsRegistry, label: &str) -> Self {
        let labels = [("resource", label)];
        ResourceInstruments {
            ops: registry.counter("resource_ops_total", &labels),
            bytes: registry.counter("resource_bytes_total", &labels),
            busy_ps: registry.counter("resource_busy_ps_total", &labels),
            span_ps: registry.histogram("resource_span_ps", &labels),
        }
    }

    #[inline]
    fn record(&self, service: SimDuration, bytes: u64) {
        self.ops.inc();
        self.bytes.add(bytes);
        self.busy_ps.add(service.as_ps());
        self.span_ps.record(service.as_ps());
    }
}

#[derive(Debug)]
struct ShaperState {
    avail: SimTime,
    busy_total: SimDuration,
    ops: u64,
    bytes: u64,
}

/// A single FCFS pipe with a fixed per-operation latency and a byte rate.
///
/// `transfer` charges `fixed + bytes/rate` of service time, queued behind any
/// in-flight operations, and suspends the calling fiber until the operation
/// completes.
///
/// # Examples
///
/// ```
/// use biscuit_sim::{Simulation, resource::Shaper, time::SimDuration};
///
/// let sim = Simulation::new(0);
/// // A 3.2 GB/s link with 10 us of per-command overhead.
/// let link = std::sync::Arc::new(Shaper::new(3.2e9, SimDuration::from_micros(10)));
/// let l = std::sync::Arc::clone(&link);
/// sim.spawn("dma", move |ctx| {
///     l.transfer(ctx, 4096);
///     assert!(ctx.now().as_micros() >= 11); // 10us + ~1.28us
/// });
/// sim.run().assert_quiescent();
/// ```
#[derive(Debug)]
pub struct Shaper {
    bytes_per_sec: f64,
    fixed: SimDuration,
    state: Mutex<ShaperState>,
    trace: OnceLock<(Tracer, Arc<str>)>,
    metrics: OnceLock<ResourceInstruments>,
}

impl Shaper {
    /// Creates a shaper with the given rate (bytes/second) and fixed
    /// per-operation latency.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_sec` is not strictly positive.
    pub fn new(bytes_per_sec: f64, fixed: SimDuration) -> Self {
        assert!(
            bytes_per_sec > 0.0,
            "shaper rate must be positive, got {bytes_per_sec}"
        );
        Shaper {
            bytes_per_sec,
            fixed,
            state: Mutex::new(ShaperState {
                avail: SimTime::ZERO,
                busy_total: SimDuration::ZERO,
                ops: 0,
                bytes: 0,
            }),
            trace: OnceLock::new(),
            metrics: OnceLock::new(),
        }
    }

    /// Labels this shaper and records a service span into `tracer` for each
    /// reservation. The first call wins; later calls are ignored.
    pub fn set_trace(&self, tracer: Tracer, label: impl Into<Arc<str>>) {
        let _ = self.trace.set((tracer, label.into()));
    }

    /// Labels this shaper and registers throughput instruments in
    /// `registry` (`resource_ops_total`, `resource_bytes_total`,
    /// `resource_busy_ps_total`, `resource_span_ps`, all labeled
    /// `resource=<label>`). The first call wins; later calls are ignored.
    pub fn set_metrics(&self, registry: &MetricsRegistry, label: &str) {
        let _ = self.metrics.set(ResourceInstruments::new(registry, label));
    }

    /// The configured byte rate.
    pub fn bytes_per_sec(&self) -> f64 {
        self.bytes_per_sec
    }

    /// Moves `bytes` through the pipe, blocking the fiber until done.
    /// Returns the completion time.
    pub fn transfer(&self, ctx: &Ctx, bytes: u64) -> SimTime {
        let end = self.enqueue(ctx.now(), bytes);
        ctx.sleep_until(end);
        end
    }

    /// Reserves service for `bytes` starting no earlier than `now`, without
    /// blocking. Returns the completion time; the caller decides when (or
    /// whether) to wait. This enables asynchronous I/O modeling.
    pub fn enqueue(&self, now: SimTime, bytes: u64) -> SimTime {
        let service = self.fixed + SimDuration::for_bytes(bytes, self.bytes_per_sec);
        let (start, end) = {
            let mut st = self.state.lock();
            let start = st.avail.max(now);
            let end = start + service;
            st.avail = end;
            st.busy_total += service;
            st.ops += 1;
            st.bytes += bytes;
            (start, end)
        };
        if let Some((tracer, label)) = self.trace.get() {
            tracer.emit(|| TraceEvent::ResourceSpan {
                resource: Arc::clone(label),
                server: None,
                start,
                end,
                bytes,
            });
        }
        if let Some(m) = self.metrics.get() {
            m.record(service, bytes);
        }
        end
    }

    /// Total busy time accumulated (for utilization/power accounting).
    pub fn busy_total(&self) -> SimDuration {
        self.state.lock().busy_total
    }

    /// Total operations served.
    pub fn ops(&self) -> u64 {
        self.state.lock().ops
    }

    /// Total bytes served.
    pub fn bytes(&self) -> u64 {
        self.state.lock().bytes
    }

    /// The earliest time a new operation could start service.
    pub fn next_free(&self) -> SimTime {
        self.state.lock().avail
    }
}

/// A bank of identical FCFS servers indexed by an integer key, e.g. one
/// server per flash channel.
#[derive(Debug)]
pub struct ServerBank {
    servers: Vec<Mutex<SimTime>>,
    busy: Mutex<SimDuration>,
    trace: OnceLock<(Tracer, Arc<str>)>,
    /// One instrument set per server, labeled `resource=<label>.<idx>`.
    metrics: OnceLock<Vec<ResourceInstruments>>,
}

impl ServerBank {
    /// Creates a bank of `n` servers.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "server bank must have at least one server");
        ServerBank {
            servers: (0..n).map(|_| Mutex::new(SimTime::ZERO)).collect(),
            busy: Mutex::new(SimDuration::ZERO),
            trace: OnceLock::new(),
            metrics: OnceLock::new(),
        }
    }

    /// Labels this bank and records a per-server service span into `tracer`
    /// for each reservation. The first call wins; later calls are ignored.
    pub fn set_trace(&self, tracer: Tracer, label: impl Into<Arc<str>>) {
        let _ = self.trace.set((tracer, label.into()));
    }

    /// Labels this bank and registers per-server throughput instruments in
    /// `registry`, keyed `resource=<label>.<idx>` (same names as
    /// [`Shaper::set_metrics`]). The first call wins; later calls are
    /// ignored.
    pub fn set_metrics(&self, registry: &MetricsRegistry, label: &str) {
        let instruments = (0..self.servers.len())
            .map(|idx| ResourceInstruments::new(registry, &format!("{label}.{idx}")))
            .collect();
        let _ = self.metrics.set(instruments);
    }

    /// Number of servers in the bank.
    pub fn len(&self) -> usize {
        self.servers.len()
    }

    /// True if the bank is empty (never; banks have ≥1 server).
    pub fn is_empty(&self) -> bool {
        self.servers.is_empty()
    }

    /// Reserves `service` time on server `idx` starting no earlier than
    /// `now`; returns the completion time without blocking.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn enqueue(&self, now: SimTime, idx: usize, service: SimDuration) -> SimTime {
        self.enqueue_span(now, idx, service).1
    }

    /// Like [`ServerBank::enqueue`], but returns the `(start, end)` pair of
    /// the reserved service window — callers that emit their own
    /// domain-specific trace spans (e.g. NAND operations) need the start.
    pub fn enqueue_span(
        &self,
        now: SimTime,
        idx: usize,
        service: SimDuration,
    ) -> (SimTime, SimTime) {
        let (start, end) = {
            let mut avail = self.servers[idx].lock();
            let start = (*avail).max(now);
            let end = start + service;
            *avail = end;
            (start, end)
        };
        *self.busy.lock() += service;
        if let Some((tracer, label)) = self.trace.get() {
            tracer.emit(|| TraceEvent::ResourceSpan {
                resource: Arc::clone(label),
                server: Some(idx),
                start,
                end,
                bytes: 0,
            });
        }
        if let Some(m) = self.metrics.get() {
            m[idx].record(service, 0);
        }
        (start, end)
    }

    /// Reserves service on server `idx` and blocks the fiber until complete.
    pub fn serve(&self, ctx: &Ctx, idx: usize, service: SimDuration) -> SimTime {
        let end = self.enqueue(ctx.now(), idx, service);
        ctx.sleep_until(end);
        end
    }

    /// Total busy time across all servers.
    pub fn busy_total(&self) -> SimDuration {
        *self.busy.lock()
    }

    /// The earliest-available server index and its free time.
    pub fn least_loaded(&self) -> (usize, SimTime) {
        self.servers
            .iter()
            .enumerate()
            .map(|(i, m)| (i, *m.lock()))
            .min_by_key(|&(_, t)| t)
            .expect("bank has at least one server")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulation;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn shaper_serializes_transfers() {
        let sim = Simulation::new(0);
        let link = Arc::new(Shaper::new(1e6, SimDuration::ZERO)); // 1 MB/s
        let t_done = Arc::new(AtomicU64::new(0));
        for i in 0..4 {
            let link = Arc::clone(&link);
            let t = Arc::clone(&t_done);
            sim.spawn(format!("x{i}"), move |ctx| {
                link.transfer(ctx, 1000); // 1ms each
                t.fetch_max(ctx.now().as_micros(), Ordering::SeqCst);
            });
        }
        sim.run().assert_quiescent();
        // Four 1ms transfers over a serial pipe finish at 4ms total.
        assert_eq!(t_done.load(Ordering::SeqCst), 4000);
    }

    #[test]
    fn shaper_fixed_cost_applies_per_op() {
        let sim = Simulation::new(0);
        let link = Arc::new(Shaper::new(1e9, SimDuration::from_micros(10)));
        let l = Arc::clone(&link);
        sim.spawn("x", move |ctx| {
            l.transfer(ctx, 0);
            assert_eq!(ctx.now().as_micros(), 10);
            l.transfer(ctx, 0);
            assert_eq!(ctx.now().as_micros(), 20);
        });
        sim.run().assert_quiescent();
        assert_eq!(link.ops(), 2);
    }

    #[test]
    fn shaper_accumulates_stats() {
        let sim = Simulation::new(0);
        let link = Arc::new(Shaper::new(1e6, SimDuration::ZERO));
        let l = Arc::clone(&link);
        sim.spawn("x", move |ctx| {
            l.transfer(ctx, 500);
            l.transfer(ctx, 1500);
        });
        sim.run().assert_quiescent();
        assert_eq!(link.bytes(), 2000);
        assert_eq!(link.busy_total().as_micros(), 2000);
    }

    #[test]
    fn enqueue_is_nonblocking_pipelined() {
        // Async pattern: enqueue N ops, wait only for the last completion.
        let sim = Simulation::new(0);
        let link = Arc::new(Shaper::new(1e6, SimDuration::ZERO));
        let l = Arc::clone(&link);
        sim.spawn("x", move |ctx| {
            let mut last = ctx.now();
            for _ in 0..8 {
                last = l.enqueue(ctx.now(), 1000);
            }
            ctx.sleep_until(last);
            assert_eq!(ctx.now().as_micros(), 8000);
        });
        sim.run().assert_quiescent();
    }

    #[test]
    fn server_bank_runs_in_parallel() {
        let sim = Simulation::new(0);
        let bank = Arc::new(ServerBank::new(4));
        let t_done = Arc::new(AtomicU64::new(0));
        for i in 0..4 {
            let bank = Arc::clone(&bank);
            let t = Arc::clone(&t_done);
            sim.spawn(format!("s{i}"), move |ctx| {
                bank.serve(ctx, i, SimDuration::from_micros(100));
                t.fetch_max(ctx.now().as_micros(), Ordering::SeqCst);
            });
        }
        sim.run().assert_quiescent();
        // Parallel servers: all finish at 100us, not 400us.
        assert_eq!(t_done.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn server_bank_queues_per_server() {
        let sim = Simulation::new(0);
        let bank = Arc::new(ServerBank::new(2));
        let b = Arc::clone(&bank);
        sim.spawn("x", move |ctx| {
            let now = ctx.now();
            let e1 = b.enqueue(now, 0, SimDuration::from_micros(10));
            let e2 = b.enqueue(now, 0, SimDuration::from_micros(10));
            let e3 = b.enqueue(now, 1, SimDuration::from_micros(10));
            assert_eq!(e1.as_micros(), 10);
            assert_eq!(e2.as_micros(), 20); // queued behind e1
            assert_eq!(e3.as_micros(), 10); // different server, parallel
        });
        sim.run().assert_quiescent();
    }

    #[test]
    fn least_loaded_picks_idle_server() {
        let bank = ServerBank::new(3);
        bank.enqueue(SimTime::ZERO, 0, SimDuration::from_micros(50));
        bank.enqueue(SimTime::ZERO, 1, SimDuration::from_micros(20));
        let (idx, t) = bank.least_loaded();
        assert_eq!(idx, 2);
        assert_eq!(t, SimTime::ZERO);
    }
}
