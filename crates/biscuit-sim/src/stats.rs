//! Lightweight measurement helpers for latency and throughput reporting.

use parking_lot::Mutex;

use crate::metrics::HistogramData;
use crate::time::SimDuration;

/// How a [`LatencyStats`] stores its samples.
#[derive(Debug)]
enum Repr {
    /// Every sample kept, in recording order: exact percentiles, O(n) memory.
    Exact(Vec<SimDuration>),
    /// Log-bucketed summary (the shared [`HistogramData`] core behind
    /// [`crate::metrics::Histogram`]): approximate percentiles, O(1) memory.
    Bounded(HistogramData),
}

/// Collects duration samples and reports summary statistics.
///
/// Two recording modes share one API: [`LatencyStats::new`] keeps every
/// sample (exact percentiles), while [`LatencyStats::bounded`] folds samples
/// into a constant-size log-bucketed histogram — the same summary core the
/// metrics registry uses — trading nearest-rank exactness for O(1) memory on
/// million-sample runs. Count, mean, min, max, and standard deviation stay
/// exact in both modes.
///
/// # Examples
///
/// ```
/// use biscuit_sim::stats::LatencyStats;
/// use biscuit_sim::time::SimDuration;
///
/// let stats = LatencyStats::new();
/// stats.record(SimDuration::from_micros(10));
/// stats.record(SimDuration::from_micros(30));
/// assert_eq!(stats.mean().as_micros(), 20);
/// assert_eq!(stats.p50(), stats.percentile(50.0));
/// ```
#[derive(Debug)]
pub struct LatencyStats {
    inner: Mutex<Repr>,
}

impl Default for LatencyStats {
    fn default() -> Self {
        LatencyStats {
            inner: Mutex::new(Repr::Exact(Vec::new())),
        }
    }
}

impl LatencyStats {
    /// Creates an empty collector that keeps every sample (exact mode).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty collector in bounded-memory mode: samples fold into
    /// a fixed 65-bucket log histogram, so memory stays constant no matter
    /// how many samples are recorded. Percentiles become bucket-resolution
    /// approximations (clamped to the observed min/max).
    pub fn bounded() -> Self {
        LatencyStats {
            inner: Mutex::new(Repr::Bounded(HistogramData::new())),
        }
    }

    /// True when this collector uses the bounded-memory representation.
    pub fn is_bounded(&self) -> bool {
        matches!(&*self.inner.lock(), Repr::Bounded(_))
    }

    /// Records one sample.
    pub fn record(&self, d: SimDuration) {
        match &mut *self.inner.lock() {
            Repr::Exact(samples) => samples.push(d),
            Repr::Bounded(hist) => hist.record(d.as_ps()),
        }
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        match &*self.inner.lock() {
            Repr::Exact(samples) => samples.len(),
            Repr::Bounded(hist) => hist.count as usize,
        }
    }

    /// Arithmetic mean (zero if no samples).
    pub fn mean(&self) -> SimDuration {
        match &*self.inner.lock() {
            Repr::Exact(samples) => {
                if samples.is_empty() {
                    return SimDuration::ZERO;
                }
                let total: u128 = samples.iter().map(|d| d.as_ps() as u128).sum();
                SimDuration::from_ps((total / samples.len() as u128) as u64)
            }
            Repr::Bounded(hist) => SimDuration::from_ps(hist.mean()),
        }
    }

    /// Smallest sample (zero if no samples).
    pub fn min(&self) -> SimDuration {
        match &*self.inner.lock() {
            Repr::Exact(samples) => samples.iter().copied().min().unwrap_or(SimDuration::ZERO),
            Repr::Bounded(hist) => SimDuration::from_ps(hist.min),
        }
    }

    /// Largest sample (zero if no samples).
    pub fn max(&self) -> SimDuration {
        match &*self.inner.lock() {
            Repr::Exact(samples) => samples.iter().copied().max().unwrap_or(SimDuration::ZERO),
            Repr::Bounded(hist) => SimDuration::from_ps(hist.max),
        }
    }

    /// The `p`-th percentile (0.0–100.0): nearest-rank over the raw samples
    /// in exact mode, bucket-resolution in bounded mode.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> SimDuration {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        match &*self.inner.lock() {
            Repr::Exact(samples) => {
                if samples.is_empty() {
                    return SimDuration::ZERO;
                }
                let mut sorted = samples.clone();
                sorted.sort_unstable();
                let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
                sorted[rank]
            }
            Repr::Bounded(hist) => SimDuration::from_ps(hist.percentile(p)),
        }
    }

    /// Median latency ([`LatencyStats::percentile`] at 50).
    pub fn p50(&self) -> SimDuration {
        self.percentile(50.0)
    }

    /// 95th-percentile latency.
    pub fn p95(&self) -> SimDuration {
        self.percentile(95.0)
    }

    /// 99th-percentile latency.
    pub fn p99(&self) -> SimDuration {
        self.percentile(99.0)
    }

    /// Sample standard deviation in seconds (zero for < 2 samples). Exact
    /// in both modes (bounded mode keeps running sums of squares).
    pub fn stddev_secs(&self) -> f64 {
        match &*self.inner.lock() {
            Repr::Exact(samples) => {
                if samples.len() < 2 {
                    return 0.0;
                }
                let mean =
                    samples.iter().map(|d| d.as_secs_f64()).sum::<f64>() / samples.len() as f64;
                let var = samples
                    .iter()
                    .map(|d| (d.as_secs_f64() - mean).powi(2))
                    .sum::<f64>()
                    / (samples.len() - 1) as f64;
                var.sqrt()
            }
            // HistogramData works in picoseconds; convert to seconds.
            Repr::Bounded(hist) => hist.stddev() * 1e-12,
        }
    }

    /// All samples, in recording order. Bounded collectors do not retain
    /// individual samples and return an empty vector.
    pub fn samples(&self) -> Vec<SimDuration> {
        match &*self.inner.lock() {
            Repr::Exact(samples) => samples.clone(),
            Repr::Bounded(_) => Vec::new(),
        }
    }

    /// The log-bucketed summary of this collector: a copy of the internal
    /// state in bounded mode, or the samples folded into a fresh
    /// [`HistogramData`] in exact mode.
    pub fn histogram(&self) -> HistogramData {
        match &*self.inner.lock() {
            Repr::Exact(samples) => {
                let mut hist = HistogramData::new();
                for d in samples {
                    hist.record(d.as_ps());
                }
                hist
            }
            Repr::Bounded(hist) => hist.clone(),
        }
    }
}

/// A monotonic counter (bytes moved, pages read, rows emitted, ...).
#[derive(Debug, Default)]
pub struct Counter {
    value: Mutex<u64>,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        *self.value.lock() += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        *self.value.lock()
    }

    /// Resets to zero, returning the previous value.
    pub fn take(&self) -> u64 {
        std::mem::take(&mut *self.value.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        for s in [LatencyStats::new(), LatencyStats::bounded()] {
            assert_eq!(s.count(), 0);
            assert_eq!(s.mean(), SimDuration::ZERO);
            assert_eq!(s.min(), SimDuration::ZERO);
            assert_eq!(s.max(), SimDuration::ZERO);
            assert_eq!(s.percentile(99.0), SimDuration::ZERO);
        }
    }

    #[test]
    fn summary_statistics() {
        let s = LatencyStats::new();
        for us in [10u64, 20, 30, 40, 100] {
            s.record(SimDuration::from_micros(us));
        }
        assert_eq!(s.count(), 5);
        assert_eq!(s.mean().as_micros(), 40);
        assert_eq!(s.min().as_micros(), 10);
        assert_eq!(s.max().as_micros(), 100);
        assert_eq!(s.percentile(50.0).as_micros(), 30);
        assert_eq!(s.percentile(100.0).as_micros(), 100);
        assert_eq!(s.p50(), s.percentile(50.0));
        assert_eq!(s.p95(), s.percentile(95.0));
        assert_eq!(s.p99(), s.percentile(99.0));
    }

    #[test]
    fn stddev_of_constant_is_zero() {
        let s = LatencyStats::new();
        s.record(SimDuration::from_micros(5));
        s.record(SimDuration::from_micros(5));
        assert_eq!(s.stddev_secs(), 0.0);
        let b = LatencyStats::bounded();
        b.record(SimDuration::from_micros(5));
        b.record(SimDuration::from_micros(5));
        assert_eq!(b.stddev_secs(), 0.0);
    }

    #[test]
    fn bounded_mode_tracks_exact_scalars() {
        let exact = LatencyStats::new();
        let bounded = LatencyStats::bounded();
        assert!(bounded.is_bounded());
        assert!(!exact.is_bounded());
        for us in [10u64, 20, 30, 40, 100, 7, 7, 7] {
            exact.record(SimDuration::from_micros(us));
            bounded.record(SimDuration::from_micros(us));
        }
        // Count, mean, min, max, stddev are exact in both modes.
        assert_eq!(bounded.count(), exact.count());
        assert_eq!(bounded.mean(), exact.mean());
        assert_eq!(bounded.min(), exact.min());
        assert_eq!(bounded.max(), exact.max());
        assert!((bounded.stddev_secs() - exact.stddev_secs()).abs() < 1e-15);
        // Percentiles are bucket-bounded: within [min, max] and no more
        // than one power of two above the exact answer.
        for p in [50.0, 95.0, 99.0] {
            let approx = bounded.percentile(p).as_ps();
            let truth = exact.percentile(p).as_ps();
            assert!(approx >= bounded.min().as_ps());
            assert!(approx <= bounded.max().as_ps());
            assert!(approx >= truth / 2, "p{p}: {approx} vs {truth}");
            assert!(
                approx <= truth.saturating_mul(2),
                "p{p}: {approx} vs {truth}"
            );
        }
        // Bounded collectors do not retain raw samples.
        assert!(bounded.samples().is_empty());
        assert_eq!(exact.samples().len(), 8);
    }

    #[test]
    fn histogram_view_matches_across_modes() {
        let exact = LatencyStats::new();
        let bounded = LatencyStats::bounded();
        for us in [1u64, 2, 3, 900, 901] {
            exact.record(SimDuration::from_micros(us));
            bounded.record(SimDuration::from_micros(us));
        }
        assert_eq!(exact.histogram(), bounded.histogram());
    }

    #[test]
    fn counter_add_and_take() {
        let c = Counter::new();
        c.add(3);
        c.add(4);
        assert_eq!(c.get(), 7);
        assert_eq!(c.take(), 7);
        assert_eq!(c.get(), 0);
    }
}
