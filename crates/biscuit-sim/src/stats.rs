//! Lightweight measurement helpers for latency and throughput reporting.

use parking_lot::Mutex;

use crate::time::SimDuration;

/// Collects duration samples and reports summary statistics.
///
/// # Examples
///
/// ```
/// use biscuit_sim::stats::LatencyStats;
/// use biscuit_sim::time::SimDuration;
///
/// let stats = LatencyStats::new();
/// stats.record(SimDuration::from_micros(10));
/// stats.record(SimDuration::from_micros(30));
/// assert_eq!(stats.mean().as_micros(), 20);
/// ```
#[derive(Debug, Default)]
pub struct LatencyStats {
    samples: Mutex<Vec<SimDuration>>,
}

impl LatencyStats {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&self, d: SimDuration) {
        self.samples.lock().push(d);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> usize {
        self.samples.lock().len()
    }

    /// Arithmetic mean (zero if no samples).
    pub fn mean(&self) -> SimDuration {
        let samples = self.samples.lock();
        if samples.is_empty() {
            return SimDuration::ZERO;
        }
        let total: u128 = samples.iter().map(|d| d.as_ps() as u128).sum();
        SimDuration::from_ps((total / samples.len() as u128) as u64)
    }

    /// Smallest sample (zero if no samples).
    pub fn min(&self) -> SimDuration {
        self.samples
            .lock()
            .iter()
            .copied()
            .min()
            .unwrap_or(SimDuration::ZERO)
    }

    /// Largest sample (zero if no samples).
    pub fn max(&self) -> SimDuration {
        self.samples
            .lock()
            .iter()
            .copied()
            .max()
            .unwrap_or(SimDuration::ZERO)
    }

    /// The `p`-th percentile (0.0–100.0), by nearest-rank.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 100]`.
    pub fn percentile(&self, p: f64) -> SimDuration {
        assert!((0.0..=100.0).contains(&p), "percentile out of range: {p}");
        let mut samples = self.samples.lock().clone();
        if samples.is_empty() {
            return SimDuration::ZERO;
        }
        samples.sort_unstable();
        let rank = ((p / 100.0) * (samples.len() - 1) as f64).round() as usize;
        samples[rank]
    }

    /// Sample standard deviation in seconds (zero for < 2 samples).
    pub fn stddev_secs(&self) -> f64 {
        let samples = self.samples.lock();
        if samples.len() < 2 {
            return 0.0;
        }
        let mean = samples.iter().map(|d| d.as_secs_f64()).sum::<f64>() / samples.len() as f64;
        let var = samples
            .iter()
            .map(|d| (d.as_secs_f64() - mean).powi(2))
            .sum::<f64>()
            / (samples.len() - 1) as f64;
        var.sqrt()
    }

    /// All samples, in recording order.
    pub fn samples(&self) -> Vec<SimDuration> {
        self.samples.lock().clone()
    }
}

/// A monotonic counter (bytes moved, pages read, rows emitted, ...).
#[derive(Debug, Default)]
pub struct Counter {
    value: Mutex<u64>,
}

impl Counter {
    /// Creates a zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` to the counter.
    pub fn add(&self, n: u64) {
        *self.value.lock() += n;
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        *self.value.lock()
    }

    /// Resets to zero, returning the previous value.
    pub fn take(&self) -> u64 {
        std::mem::take(&mut *self.value.lock())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = LatencyStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), SimDuration::ZERO);
        assert_eq!(s.min(), SimDuration::ZERO);
        assert_eq!(s.max(), SimDuration::ZERO);
        assert_eq!(s.percentile(99.0), SimDuration::ZERO);
    }

    #[test]
    fn summary_statistics() {
        let s = LatencyStats::new();
        for us in [10u64, 20, 30, 40, 100] {
            s.record(SimDuration::from_micros(us));
        }
        assert_eq!(s.count(), 5);
        assert_eq!(s.mean().as_micros(), 40);
        assert_eq!(s.min().as_micros(), 10);
        assert_eq!(s.max().as_micros(), 100);
        assert_eq!(s.percentile(50.0).as_micros(), 30);
        assert_eq!(s.percentile(100.0).as_micros(), 100);
    }

    #[test]
    fn stddev_of_constant_is_zero() {
        let s = LatencyStats::new();
        s.record(SimDuration::from_micros(5));
        s.record(SimDuration::from_micros(5));
        assert_eq!(s.stddev_secs(), 0.0);
    }

    #[test]
    fn counter_add_and_take() {
        let c = Counter::new();
        c.add(3);
        c.add(4);
        assert_eq!(c.get(), 7);
        assert_eq!(c.take(), 7);
        assert_eq!(c.get(), 0);
    }
}
