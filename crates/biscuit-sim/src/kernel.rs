//! The discrete-event simulation kernel.
//!
//! The kernel implements *process-interaction* simulation with cooperative
//! fibers, mirroring the cooperative multithreading the Biscuit runtime uses
//! on the SSD's ARM cores (paper §IV-B). Each simulated process ("fiber") is
//! backed by an OS thread, but **exactly one fiber runs at any instant**: the
//! scheduler resumes a fiber and then blocks until that fiber parks again.
//! Together with a deterministic `(time, sequence)` event order this makes
//! every simulation run bit-for-bit reproducible.
//!
//! Fibers interact with virtual time through a [`Ctx`] handle: they sleep,
//! spawn other fibers, and block on the synchronization primitives in
//! [`crate::queue`] and [`crate::resource`]. Wall-clock time never enters the
//! model.

use std::any::Any;
use std::collections::{BinaryHeap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Once};
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::metrics::{self, MetricsRegistry, MetricsSnapshot};
use crate::qprof::{QueryProfiler, QueryProfiles};
use crate::time::{SimDuration, SimTime};
use crate::trace::{Trace, TraceConfig, TraceEvent, Tracer};

/// Identifier of a simulated process (fiber).
pub type Pid = usize;

/// Sentinel panic payload used to unwind fibers at teardown. Filtered out of
/// the panic hook so cancellations are silent.
pub(crate) struct SimCancelled;

/// Scheduler-to-fiber resume message.
enum Resume {
    Go,
    Cancel,
}

/// Fiber-to-scheduler yield message.
enum YieldMsg {
    Parked,
    Finished {
        /// Panic payload if the fiber's body panicked (absent for clean exit
        /// and for cancellation unwinds).
        panic: Option<Box<dyn Any + Send>>,
    },
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum FiberState {
    Parked,
    Running,
    Finished,
}

struct FiberSlot {
    name: String,
    state: FiberState,
    /// Number of park sessions entered so far; a wake event is valid only if
    /// its generation matches the fiber's current park session. This is what
    /// makes `sleep` immune to stale wake-ups from abandoned wait-queue
    /// notifications.
    park_gen: u64,
    resume_tx: Sender<Resume>,
}

/// Work item for a pooled fiber worker thread.
enum Job {
    Run {
        kernel: Arc<Kernel>,
        pid: Pid,
        resume_rx: Receiver<Resume>,
        f: Box<dyn FnOnce(&Ctx) + Send + 'static>,
    },
    Shutdown,
}

/// Parked, reusable fiber worker threads. A fiber body borrows a worker for
/// its lifetime; on exit the worker rejoins `idle` and the next spawn reuses
/// it instead of paying OS thread creation (metered as
/// `sim_fiber_threads_reused_total`).
struct ThreadPool {
    /// Job senders of workers currently waiting for work (LIFO: the most
    /// recently parked worker is the warmest).
    idle: Vec<Sender<Job>>,
    /// Every worker ever created, for shutdown.
    workers: Vec<Sender<Job>>,
    handles: Vec<JoinHandle<()>>,
}

#[derive(PartialEq, Eq)]
struct Event {
    time: SimTime,
    seq: u64,
    pid: Pid,
    gen: u64,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct KernelInner {
    now: SimTime,
    seq: u64,
    events: BinaryHeap<Event>,
    /// Wakes scheduled *at the current instant* (the overwhelmingly common
    /// case: queue notifications, yields, spawns). `now` never decreases and
    /// `seq` only increases, so pushes arrive in ascending `(time, seq)`
    /// order and this deque stays sorted — its front plus the heap top
    /// together give the global minimum without paying heap sift costs.
    at_now: VecDeque<Event>,
    fibers: Vec<FiberSlot>,
    rng: SmallRng,
    events_processed: u64,
    /// Livelock backstop shared by the dispatcher and the fused-advance
    /// path (see [`Simulation::set_max_events`]).
    max_events: u64,
    /// Horizon of the `run_until` window currently driving this kernel.
    /// A fused advance may never move `now` past it — crossing the barrier
    /// must go through the scheduler so windowed (PDES) runs pause exactly
    /// where the unfused path would.
    run_limit: SimTime,
    /// Dispatch-path meters (clones of the scheduler's counters, so
    /// `push_event` can attribute each wake to the heap or the at-now FIFO).
    events_heap: metrics::Counter,
    events_at_now: metrics::Counter,
}

impl KernelInner {
    /// Enqueues a wake for `(pid, gen)` at `max(at, now)`, routing at-now
    /// wakes to the FIFO fast path and future wakes to the heap. The event
    /// order is by `(time, seq)` across both queues — identical to a single
    /// heap.
    fn push_event(&mut self, at: SimTime, pid: Pid, gen: u64) {
        let seq = self.seq;
        self.seq += 1;
        let time = at.max(self.now);
        let ev = Event {
            time,
            seq,
            pid,
            gen,
        };
        if time == self.now {
            self.events_at_now.inc();
            self.at_now.push_back(ev);
        } else {
            self.events_heap.inc();
            self.events.push(ev);
        }
    }

    fn pending_events(&self) -> usize {
        self.events.len() + self.at_now.len()
    }

    /// Timestamp of the event [`KernelInner::pop_event`] would return, if
    /// any. The event may still be stale (generation mismatch); callers
    /// that pause on a horizon treat a stale future event as a pause point
    /// and discard it on the next window — harmless, never reordering.
    fn peek_event_time(&self) -> Option<SimTime> {
        match (self.at_now.front(), self.events.peek()) {
            (Some(f), Some(h)) => {
                if (f.time, f.seq) < (h.time, h.seq) {
                    Some(f.time)
                } else {
                    Some(h.time)
                }
            }
            (Some(f), None) => Some(f.time),
            (None, Some(h)) => Some(h.time),
            (None, None) => None,
        }
    }

    /// Pops the earliest `(time, seq)` event across the FIFO and the heap.
    fn pop_event(&mut self) -> Option<Event> {
        let fifo_first = match (self.at_now.front(), self.events.peek()) {
            (Some(f), Some(h)) => (f.time, f.seq) < (h.time, h.seq),
            (Some(_), None) => true,
            (None, _) => false,
        };
        if fifo_first {
            self.at_now.pop_front()
        } else {
            self.events.pop()
        }
    }
}

/// Pre-registered scheduler instruments (see `docs/METRICS.md`). Handles
/// share the registry's enabled flag, so each costs one relaxed atomic load
/// while metrics are off.
struct SchedMetrics {
    fibers_spawned: metrics::Counter,
    context_switches: metrics::Counter,
    runnable: metrics::Gauge,
    /// Wakes routed to the binary heap (future timestamps).
    events_heap: metrics::Counter,
    /// Wakes routed to the at-now FIFO fast path.
    events_at_now: metrics::Counter,
    /// Chain descriptors whose every hop ran fused (see [`crate::fuse`]).
    chains_fused: metrics::Counter,
    /// Real fiber dispatches: cross-thread resume handshakes actually paid.
    /// `sim_context_switches_total` counts *logical* switches (mirrored by
    /// the fused path so exports match across `BISCUIT_FUSE` settings);
    /// the difference between the two is the fusion win.
    fiber_switches: metrics::Counter,
    /// Fiber spawns served by a parked worker thread from the free list.
    threads_reused: metrics::Counter,
}

impl SchedMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        SchedMetrics {
            fibers_spawned: registry.counter("sim_fibers_spawned_total", &[]),
            context_switches: registry.counter("sim_context_switches_total", &[]),
            runnable: registry.gauge("sim_runnable_queue_depth", &[]),
            events_heap: registry.counter("sim_events_heap_total", &[]),
            events_at_now: registry.counter("sim_events_at_now_total", &[]),
            chains_fused: registry.counter("sim_chains_fused_total", &[]),
            fiber_switches: registry.counter("sim_fiber_switches_total", &[]),
            threads_reused: registry.counter("sim_fiber_threads_reused_total", &[]),
        }
    }
}

/// Shared kernel state. Fibers hold an `Arc<Kernel>` through their [`Ctx`].
// Manual Debug below (KernelInner holds non-Debug channel internals).
pub struct Kernel {
    inner: Mutex<KernelInner>,
    yield_tx: Sender<(Pid, YieldMsg)>,
    tracer: Tracer,
    metrics: MetricsRegistry,
    qprof: QueryProfiler,
    sched: SchedMetrics,
    /// `BISCUIT_FUSE` policy: when on, [`Ctx::advance_to`] may run a hop
    /// inline instead of parking. Never changes observable behavior.
    fuse_enabled: AtomicBool,
    pool: Mutex<ThreadPool>,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Kernel")
            .field("now", &inner.now)
            .field("fibers", &inner.fibers.len())
            .field("pending_events", &inner.pending_events())
            .finish()
    }
}

impl Kernel {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.lock().now
    }

    /// The simulation's tracer (disabled unless
    /// [`Simulation::enable_trace`] was called).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The simulation's metrics registry (disabled unless
    /// [`Simulation::enable_metrics`] was called).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The simulation's query profiler (disabled unless
    /// [`Simulation::enable_qprof`] was called).
    pub fn qprof(&self) -> &QueryProfiler {
        &self.qprof
    }

    /// Schedules a wake event for `(pid, gen)` at absolute time `at`.
    fn schedule_wake(&self, at: SimTime, pid: Pid, gen: u64) {
        self.inner.lock().push_event(at, pid, gen);
    }

    /// Whether fused-chain execution is on for this kernel (the
    /// `BISCUIT_FUSE` policy knob; see [`crate::fuse`]).
    pub fn fuse_enabled(&self) -> bool {
        self.fuse_enabled.load(Ordering::Relaxed)
    }

    /// Attempts to advance virtual time to `at` on behalf of the *running*
    /// fiber `pid` without a park/dispatch round-trip. Succeeds only when
    /// the hop is provably equivalent to an unfused sleep: `at` lies within
    /// the current `run_until` window and no pending wake (stale ones
    /// included — the dispatcher would pop and discard them, and equal
    /// timestamps would dispatch first by sequence) exists at or before
    /// `at`. On success every piece of scheduler accounting the unfused
    /// path would perform — `events_processed`, the event cap, the
    /// context-switch counter, the runnable gauge, qprof attribution, and
    /// the FiberBlock/FiberResume trace pair — is mirrored exactly, so all
    /// exports stay byte-identical across `BISCUIT_FUSE` settings.
    pub(crate) fn try_fuse_advance(&self, pid: Pid, at: SimTime) -> bool {
        let (old_now, pending) = {
            let mut inner = self.inner.lock();
            if at <= inner.now {
                // Zero-length hop: the unfused path would not park either.
                return true;
            }
            if at > inner.run_limit {
                // The hop would cross the window barrier; defer to the
                // scheduler so the windowed run pauses exactly like an
                // unfused one.
                return false;
            }
            if let Some(t) = inner.peek_event_time() {
                if t <= at {
                    return false;
                }
            }
            let old_now = inner.now;
            inner.now = at;
            inner.events_processed += 1;
            if inner.events_processed > inner.max_events {
                drop(inner);
                // Propagates through the fiber's catch_unwind into
                // `first_panic`, and `finish` re-raises it.
                panic!("simulation exceeded event cap");
            }
            (old_now, inner.pending_events())
        };
        self.sched.context_switches.inc();
        self.sched.runnable.set(pending as i64);
        self.qprof.on_switch(pid);
        // The unfused pair is adjacent in the trace too: the fiber emits
        // FiberBlock before its Parked handshake and the scheduler (blocked
        // until then) emits FiberResume next.
        self.tracer
            .emit(|| TraceEvent::FiberBlock { at: old_now, pid });
        self.tracer.emit(|| TraceEvent::FiberResume { at, pid });
        true
    }

    fn spawn_fiber<F>(self: &Arc<Self>, name: String, f: F) -> Pid
    where
        F: FnOnce(&Ctx) + Send + 'static,
    {
        let (resume_tx, resume_rx) = bounded::<Resume>(1);
        let mut inner = self.inner.lock();
        let pid = inner.fibers.len();
        let trace_name: Option<Arc<str>> = if self.tracer.is_enabled() {
            Some(Arc::from(name.as_str()))
        } else {
            None
        };
        inner.fibers.push(FiberSlot {
            name,
            state: FiberState::Parked,
            park_gen: 1,
            resume_tx,
        });
        // First resume at the current time, generation 1 (the initial park).
        let now = inner.now;
        inner.push_event(now, pid, 1);
        drop(inner);
        let job = Job::Run {
            kernel: Arc::clone(self),
            pid,
            resume_rx,
            f: Box::new(f),
        };
        // Run the body on a parked worker thread when one is free; grow the
        // pool otherwise. Reuse is deterministic: a finished fiber rejoins
        // the free list before the scheduler can dispatch anything else.
        let idle = self.pool.lock().idle.pop();
        match idle {
            Some(job_tx) => {
                self.sched.threads_reused.inc();
                job_tx.send(job).expect("fiber worker hung up");
            }
            None => {
                let (job_tx, job_rx) = unbounded::<Job>();
                let tx = job_tx.clone();
                let mut pool = self.pool.lock();
                let handle = std::thread::Builder::new()
                    .name(format!("sim-worker-{}", pool.workers.len()))
                    .stack_size(512 * 1024)
                    .spawn(move || worker_main(job_rx, tx))
                    .expect("failed to spawn fiber worker thread");
                pool.workers.push(job_tx.clone());
                pool.handles.push(handle);
                drop(pool);
                job_tx.send(job).expect("fiber worker hung up");
            }
        }
        self.sched.fibers_spawned.inc();
        // Causal inheritance: the new fiber starts under whatever query
        // context the spawning fiber carries.
        self.qprof.on_spawn(pid);
        if let Some(name) = trace_name {
            self.tracer
                .record(TraceEvent::FiberSpawn { at: now, pid, name });
        }
        pid
    }
}

fn worker_main(job_rx: Receiver<Job>, job_tx: Sender<Job>) {
    while let Ok(job) = job_rx.recv() {
        match job {
            Job::Shutdown => break,
            Job::Run {
                kernel,
                pid,
                resume_rx,
                f,
            } => fiber_main(kernel, pid, resume_rx, f, &job_tx),
        }
    }
}

fn fiber_main(
    kernel: Arc<Kernel>,
    pid: Pid,
    resume_rx: Receiver<Resume>,
    f: Box<dyn FnOnce(&Ctx) + Send + 'static>,
    job_tx: &Sender<Job>,
) {
    // Initial park: wait for the scheduler's first resume.
    let payload = match resume_rx.recv() {
        Ok(Resume::Go) => {
            let ctx = Ctx {
                kernel: Arc::clone(&kernel),
                pid,
                resume_rx,
            };
            let result = panic::catch_unwind(AssertUnwindSafe(|| f(&ctx)));
            drop(ctx);
            match result {
                Ok(()) => None,
                Err(p) if p.downcast_ref::<SimCancelled>().is_some() => None,
                Err(p) => Some(p),
            }
        }
        Ok(Resume::Cancel) | Err(_) => None,
    };
    let yield_tx = kernel.yield_tx.clone();
    // Rejoin the free list *before* announcing Finished: the scheduler is
    // blocked on yield_rx until then, so a subsequent spawn observes this
    // worker deterministically. The worker holds no kernel reference while
    // idle (no Arc cycle).
    kernel.pool.lock().idle.push(job_tx.clone());
    drop(kernel);
    let _ = yield_tx.send((pid, YieldMsg::Finished { panic: payload }));
}

/// Handle a fiber uses to interact with virtual time.
///
/// A `Ctx` is passed by reference into every fiber body and every blocking
/// primitive. It identifies the calling fiber and carries the kernel
/// reference used to schedule and wait for events.
pub struct Ctx {
    kernel: Arc<Kernel>,
    pid: Pid,
    resume_rx: Receiver<Resume>,
}

impl std::fmt::Debug for Ctx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx").field("pid", &self.pid).finish()
    }
}

impl Ctx {
    /// The calling fiber's process id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.kernel.now()
    }

    /// Suspends the fiber for `d` of virtual time.
    pub fn sleep(&self, d: SimDuration) {
        if d.is_zero() {
            return;
        }
        {
            let mut inner = self.kernel.inner.lock();
            let at = inner.now + d;
            let gen = inner.fibers[self.pid].park_gen + 1;
            inner.push_event(at, self.pid, gen);
        }
        self.park();
    }

    /// Suspends the fiber until absolute time `at` (no-op if `at` has passed).
    pub fn sleep_until(&self, at: SimTime) {
        let now = self.now();
        if at > now {
            self.sleep(at - now);
        }
    }

    /// Fused [`Ctx::sleep_until`]: when the `BISCUIT_FUSE` policy is on and
    /// no other fiber could legally run in `(now, at]`, advances the clock
    /// inline — no park, no cross-thread handshake — and returns `true`.
    /// Otherwise falls back to [`Ctx::sleep_until`] and returns `false`.
    /// Observable behavior (virtual timestamps, event counts, traces,
    /// metrics, qprof attribution) is identical either way; only wall-clock
    /// cost differs. See [`crate::fuse`] for the chain-descriptor layer on
    /// top of this primitive.
    pub fn advance_to(&self, at: SimTime) -> bool {
        if self.kernel.fuse_enabled() && self.kernel.try_fuse_advance(self.pid, at) {
            return true;
        }
        self.sleep_until(at);
        false
    }

    /// Fused [`Ctx::sleep`]: `advance_to(now + d)`.
    pub fn advance(&self, d: SimDuration) -> bool {
        if d.is_zero() {
            return true;
        }
        let at = self.now() + d;
        self.advance_to(at)
    }

    /// Counts a chain whose every hop ran fused (see [`crate::fuse`]).
    pub(crate) fn note_chain_fused(&self) {
        self.kernel.sched.chains_fused.inc();
    }

    /// Yields to other fibers runnable at the current instant.
    pub fn yield_now(&self) {
        {
            let mut inner = self.kernel.inner.lock();
            let now = inner.now;
            let gen = inner.fibers[self.pid].park_gen + 1;
            inner.push_event(now, self.pid, gen);
        }
        self.park();
    }

    /// Spawns a new fiber that starts at the current virtual time.
    ///
    /// Returns the new fiber's [`Pid`].
    pub fn spawn<F>(&self, name: impl Into<String>, f: F) -> Pid
    where
        F: FnOnce(&Ctx) + Send + 'static,
    {
        self.kernel.spawn_fiber(name.into(), f)
    }

    /// Runs `f` with the simulation's deterministic random number generator.
    pub fn with_rng<R>(&self, f: impl FnOnce(&mut SmallRng) -> R) -> R {
        f(&mut self.kernel.inner.lock().rng)
    }

    /// The simulation's metrics registry. Fibers (e.g. bench bodies) use
    /// this to attach device components mid-run via their
    /// `set_metrics`/`attach_metrics` methods.
    pub fn metrics(&self) -> &MetricsRegistry {
        self.kernel.metrics()
    }

    /// The simulation's query profiler. Query entry points use this to
    /// mint [`crate::qprof::SpanContext`]s and record resource spans.
    pub fn qprof(&self) -> &QueryProfiler {
        self.kernel.qprof()
    }

    /// Registers the fiber's *next* park generation; used by wait queues to
    /// target a wake at the park the fiber is about to enter.
    pub(crate) fn next_park_gen(&self) -> u64 {
        self.kernel.inner.lock().fibers[self.pid].park_gen + 1
    }

    /// Schedules a wake for `(pid, gen)` at the current time. Used by wait
    /// queues when notifying.
    pub(crate) fn wake_at_now(&self, pid: Pid, gen: u64) {
        let mut inner = self.kernel.inner.lock();
        let now = inner.now;
        inner.push_event(now, pid, gen);
    }

    /// Schedules a wake for `(pid, gen)` at absolute time `at`. Used by
    /// deadline-aware waits to arm a timeout alongside a queue
    /// registration; whichever wake fires first wins and the loser goes
    /// stale via the generation check.
    pub(crate) fn wake_at(&self, at: SimTime, pid: Pid, gen: u64) {
        self.kernel.schedule_wake(at, pid, gen);
    }

    /// Parks the calling fiber until a matching wake event fires.
    ///
    /// Callers must have arranged for a wake targeting the fiber's next park
    /// generation (via [`Ctx::sleep`], a wait queue registration, etc.),
    /// otherwise the fiber blocks until simulation teardown.
    pub(crate) fn park(&self) {
        let now = {
            let mut inner = self.kernel.inner.lock();
            let slot = &mut inner.fibers[self.pid];
            slot.park_gen += 1;
            slot.state = FiberState::Parked;
            inner.now
        };
        // Emitted before the Parked handshake, so the scheduler (which is
        // blocked on yield_rx until then) cannot interleave its own events.
        self.kernel.tracer.emit(|| TraceEvent::FiberBlock {
            at: now,
            pid: self.pid,
        });
        self.kernel
            .yield_tx
            .send((self.pid, YieldMsg::Parked))
            .expect("scheduler hung up");
        match self.resume_rx.recv() {
            Ok(Resume::Go) => {}
            Ok(Resume::Cancel) | Err(_) => panic::panic_any(SimCancelled),
        }
    }
}

/// Summary returned by [`Simulation::run`].
#[derive(Debug)]
pub struct SimReport {
    /// Virtual time when the event queue drained.
    pub end_time: SimTime,
    /// Names of fibers that were still blocked when the simulation ended
    /// (normally empty for well-terminating workloads).
    pub blocked: Vec<String>,
    /// Total fibers spawned over the simulation's lifetime.
    pub fibers_spawned: usize,
    /// Total wake events processed.
    pub events_processed: u64,
    /// Snapshot of the structured event trace (empty unless
    /// [`Simulation::enable_trace`] was called). Export it with
    /// [`Trace::to_chrome_json`] or summarize it with [`Trace::metrics`].
    pub trace: Trace,
    /// Snapshot of the aggregate metrics registry (empty unless
    /// [`Simulation::enable_metrics`] was called). Export it with
    /// [`MetricsSnapshot::to_json`] or [`MetricsSnapshot::to_prometheus`].
    pub metrics: MetricsSnapshot,
    /// Per-query latency profiles (empty unless
    /// [`Simulation::enable_qprof`] was called). Export with
    /// [`QueryProfiles::to_json`] or render with [`QueryProfiles::to_table`].
    pub profiles: QueryProfiles,
}

impl SimReport {
    /// Asserts that every fiber terminated (no deadlocked/blocked fibers).
    ///
    /// # Panics
    ///
    /// Panics if any fiber was still blocked at teardown.
    pub fn assert_quiescent(&self) {
        assert!(
            self.blocked.is_empty(),
            "simulation ended with blocked fibers: {:?}",
            self.blocked
        );
    }
}

/// Outcome of one [`Simulation::run_until`] call.
///
/// A shard kernel driven in bounded windows (see [`crate::par`]) reports
/// through this enum whether it still has pending virtual-time work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// The event queue drained: no fiber has a pending wake. The kernel
    /// may still hold parked fibers (they are reported as blocked by
    /// [`Simulation::finish`]).
    Drained,
    /// Events remain, but the earliest is beyond the requested horizon.
    Paused {
        /// Timestamp of the earliest pending event (always greater than
        /// the `limit` passed to [`Simulation::run_until`]).
        next: SimTime,
    },
    /// A fiber panicked. The payload is held and re-raised by
    /// [`Simulation::finish`] (or [`Simulation::run`]); further
    /// `run_until` calls return `Panicked` without processing events.
    Panicked,
}

/// A discrete-event simulation instance.
///
/// # Examples
///
/// ```
/// use biscuit_sim::{Simulation, time::SimDuration};
/// use std::sync::{Arc, atomic::{AtomicU64, Ordering}};
///
/// let sim = Simulation::new(42);
/// let done_at = Arc::new(AtomicU64::new(0));
/// let d = Arc::clone(&done_at);
/// sim.spawn("worker", move |ctx| {
///     ctx.sleep(SimDuration::from_micros(10));
///     d.store(ctx.now().as_micros(), Ordering::SeqCst);
/// });
/// let report = sim.run();
/// assert_eq!(done_at.load(Ordering::SeqCst), 10);
/// report.assert_quiescent();
/// ```
///
/// ## Driving a kernel in bounded windows
///
/// [`Simulation::run`] executes to completion. A simulation can instead be
/// driven as an independent *shard kernel*: [`Simulation::run_until`]
/// processes events up to a virtual-time horizon and pauses, and
/// [`Simulation::finish`] tears down and produces the [`SimReport`]. The
/// event order is identical however the run is partitioned — windows only
/// decide when control returns to the caller, never which event runs next:
///
/// ```
/// use biscuit_sim::kernel::RunStatus;
/// use biscuit_sim::{Simulation, SimTime, time::SimDuration};
///
/// let mut sim = Simulation::new(0);
/// sim.spawn("worker", |ctx| {
///     for _ in 0..10 {
///         ctx.sleep(SimDuration::from_micros(3));
///     }
/// });
/// // Drive in 10 us lookahead windows until the shard drains.
/// let mut horizon = SimTime::ZERO + SimDuration::from_micros(10);
/// while let RunStatus::Paused { .. } = sim.run_until(horizon) {
///     horizon = horizon + SimDuration::from_micros(10);
/// }
/// let report = sim.finish();
/// assert_eq!(report.end_time.as_micros(), 30);
/// report.assert_quiescent();
/// ```
pub struct Simulation {
    kernel: Arc<Kernel>,
    yield_rx: Receiver<(Pid, YieldMsg)>,
    finished: bool,
    /// First fiber panic observed by `run_until`; re-raised by `finish`.
    first_panic: Option<Box<dyn Any + Send>>,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.kernel.now())
            .finish()
    }
}

fn install_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<SimCancelled>().is_none() {
                prev(info);
            }
        }));
    });
}

impl Simulation {
    /// Creates a simulation with the given RNG seed.
    ///
    /// The same seed always produces the same run.
    pub fn new(seed: u64) -> Self {
        install_panic_hook();
        let (yield_tx, yield_rx) = unbounded();
        let metrics = MetricsRegistry::new();
        let sched = SchedMetrics::new(&metrics);
        let kernel = Arc::new(Kernel {
            inner: Mutex::new(KernelInner {
                now: SimTime::ZERO,
                seq: 0,
                // Pre-sized so steady-state scheduling never reallocates.
                events: BinaryHeap::with_capacity(1024),
                at_now: VecDeque::with_capacity(256),
                fibers: Vec::new(),
                rng: SmallRng::seed_from_u64(seed),
                events_processed: 0,
                max_events: u64::MAX,
                run_limit: SimTime::ZERO,
                events_heap: sched.events_heap.clone(),
                events_at_now: sched.events_at_now.clone(),
            }),
            yield_tx,
            tracer: Tracer::new(),
            metrics,
            qprof: QueryProfiler::new(),
            sched,
            fuse_enabled: AtomicBool::new(crate::fuse::from_env()),
            pool: Mutex::new(ThreadPool {
                idle: Vec::new(),
                workers: Vec::new(),
                handles: Vec::new(),
            }),
        });
        Simulation {
            kernel,
            yield_rx,
            finished: false,
            first_panic: None,
        }
    }

    /// Caps the number of wake events processed (a livelock backstop).
    /// Exceeding the cap aborts the run with a panic.
    pub fn set_max_events(&mut self, max: u64) {
        self.kernel.inner.lock().max_events = max;
    }

    /// Overrides the `BISCUIT_FUSE` policy for this simulation (the env
    /// knob sets the default). Fusion is a wall-clock optimization only:
    /// both settings produce byte-identical exports at the same seed (see
    /// [`crate::fuse`] and `docs/PERF.md`).
    pub fn set_fuse(&self, on: bool) {
        self.kernel.fuse_enabled.store(on, Ordering::Relaxed);
    }

    /// Shared kernel handle (needed by library code that schedules work).
    pub fn kernel(&self) -> &Arc<Kernel> {
        &self.kernel
    }

    /// Enables structured event tracing for this simulation, resetting the
    /// trace buffer to `cfg.capacity` events. Attach the returned/shared
    /// [`Tracer`] (see [`Simulation::tracer`]) to device components to
    /// capture their events too; the final [`SimReport::trace`] holds the
    /// recorded snapshot.
    pub fn enable_trace(&self, cfg: TraceConfig) {
        self.kernel.tracer.enable(cfg);
    }

    /// The simulation's tracer handle (disabled until
    /// [`Simulation::enable_trace`]). Clone it into queues, resources, and
    /// devices via their `set_trace`/`attach_tracer` methods.
    pub fn tracer(&self) -> &Tracer {
        self.kernel.tracer()
    }

    /// Enables aggregate metrics collection for this simulation. Attach the
    /// shared [`MetricsRegistry`] (see [`Simulation::metrics`]) to device
    /// components via their `set_metrics`/`attach_metrics` methods; the
    /// final [`SimReport::metrics`] holds the recorded snapshot.
    pub fn enable_metrics(&self) {
        self.kernel.metrics.enable();
    }

    /// The simulation's metrics registry handle (disabled until
    /// [`Simulation::enable_metrics`]). Clone it into queues, resources,
    /// and devices via their `set_metrics`/`attach_metrics` methods.
    pub fn metrics(&self) -> &MetricsRegistry {
        self.kernel.metrics()
    }

    /// Enables query-scoped profiling for this simulation. Query entry
    /// points mint [`crate::qprof::SpanContext`]s through the shared
    /// [`QueryProfiler`]; the final [`SimReport::profiles`] holds the
    /// derived per-query latency attributions. Pure observation: enabling
    /// it never changes simulated timing or event counts.
    pub fn enable_qprof(&self) {
        self.kernel.qprof.enable();
    }

    /// The simulation's query profiler handle (disabled until
    /// [`Simulation::enable_qprof`]).
    pub fn qprof(&self) -> &QueryProfiler {
        self.kernel.qprof()
    }

    /// Spawns a fiber that starts at the current virtual time.
    pub fn spawn<F>(&self, name: impl Into<String>, f: F) -> Pid
    where
        F: FnOnce(&Ctx) + Send + 'static,
    {
        self.kernel.spawn_fiber(name.into(), f)
    }

    /// Runs the simulation until the event queue drains, then tears down any
    /// still-blocked fibers.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic that occurred inside a fiber, and panics if
    /// the configured event cap is exceeded.
    pub fn run(mut self) -> SimReport {
        let _ = self.run_until(SimTime::MAX);
        self.finish()
    }

    /// Processes every event with timestamp at or before `limit`, then
    /// returns control to the caller.
    ///
    /// This is the *shard kernel* entry point for conservative parallel DES
    /// (see [`crate::par`] and `docs/PARALLEL.md`): a coordinator owns N
    /// independent simulations and advances each in bounded lookahead
    /// windows on its own OS thread. Partitioning a run into windows never
    /// changes the event order — events execute in global `(time, seq)`
    /// order exactly as under [`Simulation::run`] — so traces, metrics, and
    /// results are byte-identical for any window schedule, including
    /// `run_until(SimTime::MAX)`.
    ///
    /// After [`RunStatus::Drained`] the queue may refill if a still-parked
    /// fiber is woken by outside action; calling `run_until` again resumes
    /// processing. After [`RunStatus::Panicked`] the kernel stops
    /// scheduling; call [`Simulation::finish`] to re-raise the payload.
    ///
    /// # Panics
    ///
    /// Panics if the configured event cap is exceeded.
    pub fn run_until(&mut self, limit: SimTime) -> RunStatus {
        if self.first_panic.is_some() {
            return RunStatus::Panicked;
        }
        // Publish the window horizon: a fused advance may not cross it.
        self.kernel.inner.lock().run_limit = limit;
        loop {
            // Pop the next valid event at or before the horizon.
            let next = {
                let mut inner = self.kernel.inner.lock();
                loop {
                    match inner.peek_event_time() {
                        None => break None,
                        Some(t) if t > limit => break Some(Err(t)),
                        Some(_) => {}
                    }
                    let ev = inner.pop_event().expect("peeked event exists");
                    let slot = &inner.fibers[ev.pid];
                    if slot.state == FiberState::Parked && slot.park_gen == ev.gen {
                        inner.now = ev.time;
                        inner.events_processed += 1;
                        if inner.events_processed > inner.max_events {
                            drop(inner);
                            self.teardown();
                            panic!("simulation exceeded event cap");
                        }
                        let tx = inner.fibers[ev.pid].resume_tx.clone();
                        inner.fibers[ev.pid].state = FiberState::Running;
                        break Some(Ok((ev.pid, tx, ev.time, inner.pending_events())));
                    }
                    // Stale wake: generation mismatch or fiber done.
                }
            };
            let (pid, tx, at, pending) = match next {
                None => return RunStatus::Drained,
                Some(Err(t)) => return RunStatus::Paused { next: t },
                Some(Ok(ev)) => ev,
            };
            self.kernel.sched.context_switches.inc();
            // A real dispatch (cross-thread handshake), as opposed to the
            // logical switches the fused path mirrors.
            self.kernel.sched.fiber_switches.inc();
            self.kernel.sched.runnable.set(pending as i64);
            self.kernel.qprof.on_switch(pid);
            self.kernel
                .tracer
                .emit(|| TraceEvent::FiberResume { at, pid });
            tx.send(Resume::Go).expect("fiber hung up");
            // Wait until that fiber parks or finishes.
            match self.yield_rx.recv().expect("all fibers hung up") {
                (_, YieldMsg::Parked) => {}
                (fpid, YieldMsg::Finished { panic }) => {
                    debug_assert_eq!(fpid, pid);
                    let now = {
                        let mut inner = self.kernel.inner.lock();
                        inner.fibers[fpid].state = FiberState::Finished;
                        inner.now
                    };
                    self.kernel
                        .tracer
                        .emit(|| TraceEvent::FiberFinish { at: now, pid: fpid });
                    // The worker thread that ran this fiber has already
                    // parked itself on the pool's free list; nothing to join.
                    if let Some(p) = panic {
                        self.first_panic.get_or_insert(p);
                    }
                }
            }
            if self.first_panic.is_some() {
                return RunStatus::Panicked;
            }
        }
    }

    /// Timestamp of the earliest pending wake event, or `None` when the
    /// queue is drained. The returned event may be a stale wake (it would
    /// be discarded, not dispatched); windowed drivers only use this to
    /// pace horizons, so an occasional stale timestamp is harmless.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.kernel.inner.lock().peek_event_time()
    }

    /// Wake events processed so far (the wall-clock bench's sim-events
    /// numerator, readable mid-run when driving windows).
    pub fn events_processed(&self) -> u64 {
        self.kernel.inner.lock().events_processed
    }

    /// Builds the final [`SimReport`] and tears down any still-parked
    /// fibers. Use after driving the kernel with [`Simulation::run_until`];
    /// [`Simulation::run`] is exactly `run_until(SimTime::MAX)` + `finish`.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic that occurred inside a fiber.
    pub fn finish(mut self) -> SimReport {
        let report = self.build_report();
        self.teardown();
        self.finished = true;
        if let Some(p) = self.first_panic.take() {
            panic::resume_unwind(p);
        }
        report
    }

    fn build_report(&self) -> SimReport {
        let trace = self.kernel.tracer.snapshot();
        // Surface ring-buffer truncation: silently dropped events would
        // otherwise make a trace look complete when it is not.
        if trace.dropped() > 0 {
            self.kernel
                .metrics
                .counter("trace_dropped_total", &[])
                .add(trace.dropped());
        }
        let inner = self.kernel.inner.lock();
        self.kernel.metrics.set_horizon(inner.now);
        SimReport {
            end_time: inner.now,
            blocked: inner
                .fibers
                .iter()
                .filter(|f| f.state == FiberState::Parked)
                .map(|f| f.name.clone())
                .collect(),
            fibers_spawned: inner.fibers.len(),
            events_processed: inner.events_processed,
            trace,
            metrics: self.kernel.metrics.snapshot(),
            profiles: self.kernel.qprof.snapshot(),
        }
    }

    /// Cancels all parked fibers, then retires the worker thread pool.
    fn teardown(&self) {
        loop {
            // Cancel parked fibers one by one; each cancellation may cause the
            // fiber to finish, which we must observe via yield_rx.
            let target = {
                let inner = self.kernel.inner.lock();
                inner
                    .fibers
                    .iter()
                    .position(|f| f.state == FiberState::Parked)
            };
            let Some(pid) = target else { break };
            let tx = {
                let mut inner = self.kernel.inner.lock();
                inner.fibers[pid].state = FiberState::Running;
                inner.fibers[pid].resume_tx.clone()
            };
            let _ = tx.send(Resume::Cancel);
            // Drain messages until this fiber reports Finished. A cancelled
            // fiber unwinds without parking again, so the next message from it
            // is Finished; messages from other fibers cannot arrive (they are
            // all parked).
            loop {
                match self.yield_rx.recv() {
                    Ok((fpid, YieldMsg::Finished { .. })) => {
                        self.kernel.inner.lock().fibers[fpid].state = FiberState::Finished;
                        if fpid == pid {
                            break;
                        }
                    }
                    Ok((_, YieldMsg::Parked)) => {
                        // A cancelled fiber cannot park (cancel unwinds), but
                        // be defensive: ignore.
                    }
                    Err(_) => return,
                }
            }
        }
        // Retire the worker pool. Every fiber has finished, so each worker
        // is idle or about to be — Shutdown queues behind its last job.
        // Idempotent: a second teardown finds the pool already drained.
        let (workers, handles) = {
            let mut pool = self.kernel.pool.lock();
            pool.idle.clear();
            (
                std::mem::take(&mut pool.workers),
                std::mem::take(&mut pool.handles),
            )
        };
        for tx in &workers {
            let _ = tx.send(Job::Shutdown);
        }
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Drop for Simulation {
    fn drop(&mut self) {
        if !self.finished {
            self.teardown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn empty_simulation_terminates() {
        let report = Simulation::new(0).run();
        assert_eq!(report.end_time, SimTime::ZERO);
        assert_eq!(report.fibers_spawned, 0);
        report.assert_quiescent();
    }

    #[test]
    fn sleep_advances_virtual_time() {
        let sim = Simulation::new(0);
        let t = Arc::new(AtomicU64::new(0));
        let t2 = Arc::clone(&t);
        sim.spawn("a", move |ctx| {
            ctx.sleep(SimDuration::from_micros(100));
            ctx.sleep(SimDuration::from_micros(23));
            t2.store(ctx.now().as_micros(), Ordering::SeqCst);
        });
        let report = sim.run();
        assert_eq!(t.load(Ordering::SeqCst), 123);
        assert_eq!(report.end_time.as_micros(), 123);
        report.assert_quiescent();
    }

    #[test]
    fn fibers_interleave_deterministically() {
        // Two runs with the same seed produce identical schedules.
        fn trace() -> Vec<(u64, usize)> {
            let sim = Simulation::new(7);
            let log = Arc::new(Mutex::new(Vec::new()));
            for id in 0..3usize {
                let log = Arc::clone(&log);
                sim.spawn(format!("f{id}"), move |ctx| {
                    for step in 0..4u64 {
                        ctx.sleep(SimDuration::from_micros(10 * (id as u64 + 1) + step));
                        log.lock().push((ctx.now().as_micros(), id));
                    }
                });
            }
            sim.run().assert_quiescent();
            let result = log.lock().clone();
            result
        }
        let a = trace();
        let b = trace();
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
        // Timestamps are monotonically non-decreasing in schedule order.
        assert!(a.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn spawn_from_fiber() {
        let sim = Simulation::new(0);
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        sim.spawn("parent", move |ctx| {
            for _ in 0..5 {
                let c = Arc::clone(&c);
                ctx.spawn("child", move |cctx| {
                    cctx.sleep(SimDuration::from_micros(1));
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        let report = sim.run();
        assert_eq!(count.load(Ordering::SeqCst), 5);
        assert_eq!(report.fibers_spawned, 6);
        report.assert_quiescent();
    }

    #[test]
    fn same_time_events_run_in_spawn_order() {
        let sim = Simulation::new(0);
        let log = Arc::new(Mutex::new(Vec::new()));
        for id in 0..4usize {
            let log = Arc::clone(&log);
            sim.spawn(format!("f{id}"), move |_ctx| {
                log.lock().push(id);
            });
        }
        sim.run().assert_quiescent();
        assert_eq!(*log.lock(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn blocked_fiber_is_reported_and_cancelled() {
        let sim = Simulation::new(0);
        sim.spawn("stuck", |ctx| {
            // Park with no wake source: blocks forever.
            ctx.park();
            unreachable!("cancelled fibers unwind instead of returning");
        });
        let report = sim.run();
        assert_eq!(report.blocked, vec!["stuck".to_string()]);
    }

    #[test]
    fn fiber_panic_propagates() {
        let sim = Simulation::new(0);
        sim.spawn("boom", |_ctx| panic!("exploded"));
        let err = panic::catch_unwind(AssertUnwindSafe(|| sim.run())).unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "exploded");
    }

    #[test]
    fn rng_is_deterministic() {
        fn draw() -> Vec<u64> {
            use rand::Rng;
            let sim = Simulation::new(99);
            let out = Arc::new(Mutex::new(Vec::new()));
            let o = Arc::clone(&out);
            sim.spawn("r", move |ctx| {
                for _ in 0..8 {
                    let v = ctx.with_rng(|r| r.random::<u64>());
                    o.lock().push(v);
                }
            });
            sim.run().assert_quiescent();
            let result = out.lock().clone();
            result
        }
        assert_eq!(draw(), draw());
    }

    #[test]
    fn yield_now_lets_peers_run() {
        let sim = Simulation::new(0);
        let log = Arc::new(Mutex::new(Vec::new()));
        let l1 = Arc::clone(&log);
        let l2 = Arc::clone(&log);
        sim.spawn("a", move |ctx| {
            l1.lock().push("a1");
            ctx.yield_now();
            l1.lock().push("a2");
        });
        sim.spawn("b", move |_ctx| {
            l2.lock().push("b1");
        });
        sim.run().assert_quiescent();
        assert_eq!(*log.lock(), vec!["a1", "b1", "a2"]);
    }

    /// A three-fiber workload driven (a) to completion with `run` and (b) in
    /// bounded windows with `run_until` produces the same schedule log and
    /// report — windows decide when control returns, never what runs next.
    #[test]
    fn windowed_run_matches_run_to_completion() {
        fn build(sim: &Simulation) -> Arc<Mutex<Vec<(u64, usize)>>> {
            let log = Arc::new(Mutex::new(Vec::new()));
            for id in 0..3usize {
                let log = Arc::clone(&log);
                sim.spawn(format!("f{id}"), move |ctx| {
                    for step in 0..5u64 {
                        ctx.sleep(SimDuration::from_micros(7 * (id as u64 + 1) + step));
                        log.lock().push((ctx.now().as_micros(), id));
                    }
                });
            }
            log
        }
        let sim = Simulation::new(3);
        let log_full = build(&sim);
        let full = sim.run();
        full.assert_quiescent();

        // Re-run in 5 us windows; also exercise Paused::next pacing.
        let mut sim = Simulation::new(3);
        let log_win = build(&sim);
        let mut horizon = SimTime::ZERO + SimDuration::from_micros(5);
        let windowed = loop {
            match sim.run_until(horizon) {
                RunStatus::Drained => break sim.finish(),
                RunStatus::Paused { next } => {
                    assert!(next > horizon);
                    horizon = horizon + SimDuration::from_micros(5);
                }
                RunStatus::Panicked => unreachable!("no fiber panics here"),
            }
        };
        windowed.assert_quiescent();

        assert_eq!(*log_full.lock(), *log_win.lock());
        assert_eq!(full.end_time, windowed.end_time);
        assert_eq!(full.events_processed, windowed.events_processed);
    }

    #[test]
    fn run_until_pauses_at_horizon() {
        let mut sim = Simulation::new(0);
        sim.spawn("w", |ctx| {
            ctx.sleep(SimDuration::from_micros(100));
        });
        // The spawn wake at t=0 runs; the sleep wake at t=100 is past the
        // horizon, so the kernel pauses and reports it.
        let status = sim.run_until(SimTime::ZERO + SimDuration::from_micros(10));
        assert_eq!(
            status,
            RunStatus::Paused {
                next: SimTime::ZERO + SimDuration::from_micros(100)
            }
        );
        assert_eq!(
            sim.next_event_time(),
            Some(SimTime::ZERO + SimDuration::from_micros(100))
        );
        assert_eq!(sim.run_until(SimTime::MAX), RunStatus::Drained);
        let report = sim.finish();
        assert_eq!(report.end_time.as_micros(), 100);
        report.assert_quiescent();
    }

    #[test]
    fn run_until_reports_panic_and_finish_reraises() {
        let mut sim = Simulation::new(0);
        sim.spawn("boom", |ctx| {
            ctx.sleep(SimDuration::from_micros(5));
            panic!("windowed explosion");
        });
        assert_eq!(sim.run_until(SimTime::MAX), RunStatus::Panicked);
        // Subsequent windows refuse to schedule.
        assert_eq!(sim.run_until(SimTime::MAX), RunStatus::Panicked);
        let err = panic::catch_unwind(AssertUnwindSafe(|| sim.finish())).unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "windowed explosion");
    }

    #[test]
    fn event_cap_aborts() {
        let mut sim = Simulation::new(0);
        sim.set_max_events(10);
        sim.spawn("spin", |ctx| loop {
            ctx.sleep(SimDuration::from_nanos(1));
        });
        let err = panic::catch_unwind(AssertUnwindSafe(|| sim.run())).unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("event cap"));
    }

    #[test]
    fn event_cap_aborts_fused_advances_too() {
        let mut sim = Simulation::new(0);
        sim.set_max_events(10);
        sim.set_fuse(true);
        sim.spawn("spin", |ctx| loop {
            ctx.advance(SimDuration::from_nanos(1));
        });
        let err = panic::catch_unwind(AssertUnwindSafe(|| sim.run())).unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("event cap"), "got: {msg}");
    }

    /// `advance` and `sleep` are observationally identical: same end time,
    /// same event count, same legacy scheduler metrics. Only the dispatch
    /// meters in `crate::fuse::VARIANT_METRICS` may differ.
    #[test]
    fn fused_advance_mirrors_sleep_accounting() {
        fn run(fuse: bool) -> (SimReport, String) {
            let sim = Simulation::new(5);
            sim.enable_metrics();
            sim.set_fuse(fuse);
            sim.spawn("hopper", |ctx| {
                for _ in 0..50 {
                    ctx.advance(SimDuration::from_micros(3));
                }
            });
            let report = sim.run();
            report.assert_quiescent();
            let json = report
                .metrics
                .without(crate::fuse::VARIANT_METRICS)
                .to_json();
            (report, json)
        }
        let (unfused, unfused_json) = run(false);
        let (fused, fused_json) = run(true);
        assert_eq!(unfused.end_time, fused.end_time);
        assert_eq!(unfused.events_processed, fused.events_processed);
        assert_eq!(unfused_json, fused_json);
        // The fused run dispatched fewer real fiber switches.
        let real = |r: &SimReport| {
            r.metrics
                .counter_value("sim_fiber_switches_total", &[])
                .unwrap()
        };
        assert!(real(&fused) < real(&unfused));
        assert_eq!(
            fused
                .metrics
                .counter_value("sim_context_switches_total", &[]),
            unfused
                .metrics
                .counter_value("sim_context_switches_total", &[]),
        );
    }

    /// A fused advance may not cross the `run_until` horizon: the kernel
    /// pauses at the same points, with the same `Paused { next }`, as an
    /// unfused run — windows never change the schedule.
    #[test]
    fn fused_advance_respects_window_barriers() {
        fn run(fuse: bool, windowed: bool) -> (Vec<u64>, SimReport) {
            let sim = Simulation::new(1);
            sim.set_fuse(fuse);
            let log = Arc::new(Mutex::new(Vec::new()));
            let l = Arc::clone(&log);
            sim.spawn("hopper", move |ctx| {
                for step in 0..6u64 {
                    ctx.advance(SimDuration::from_micros(4 + step));
                    l.lock().push(ctx.now().as_micros());
                }
            });
            let report = if windowed {
                let mut sim = sim;
                let mut horizon = SimTime::ZERO + SimDuration::from_micros(5);
                loop {
                    match sim.run_until(horizon) {
                        RunStatus::Drained => break sim.finish(),
                        RunStatus::Paused { next } => {
                            assert!(next > horizon);
                            horizon = horizon + SimDuration::from_micros(5);
                        }
                        RunStatus::Panicked => unreachable!(),
                    }
                }
            } else {
                sim.run()
            };
            report.assert_quiescent();
            let out = log.lock().clone();
            (out, report)
        }
        let (log_ref, rep_ref) = run(false, false);
        for (fuse, windowed) in [(false, true), (true, false), (true, true)] {
            let (log, rep) = run(fuse, windowed);
            assert_eq!(log, log_ref, "fuse={fuse} windowed={windowed}");
            assert_eq!(rep.end_time, rep_ref.end_time);
            assert_eq!(rep.events_processed, rep_ref.events_processed);
        }
    }

    #[test]
    fn finished_fiber_threads_are_reused() {
        let sim = Simulation::new(0);
        sim.enable_metrics();
        let c = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&c);
        sim.spawn("parent", move |ctx| {
            // Children run strictly one after another, so each spawn after
            // the first finds the previous child's worker on the free list.
            for i in 0..4u64 {
                let c = Arc::clone(&c2);
                ctx.spawn(format!("child{i}"), move |cctx| {
                    cctx.sleep(SimDuration::from_micros(1));
                    c.fetch_add(1, Ordering::SeqCst);
                });
                ctx.sleep(SimDuration::from_micros(10));
            }
        });
        let report = sim.run();
        report.assert_quiescent();
        assert_eq!(c.load(Ordering::SeqCst), 4);
        let reused = report
            .metrics
            .counter_value("sim_fiber_threads_reused_total", &[])
            .unwrap();
        assert!(
            reused >= 3,
            "sequential children must reuse workers: {reused}"
        );
    }

    #[test]
    fn thread_reuse_does_not_change_schedule() {
        fn run() -> (Vec<(u64, usize)>, u64) {
            let sim = Simulation::new(9);
            let log = Arc::new(Mutex::new(Vec::new()));
            let l = Arc::clone(&log);
            sim.spawn("parent", move |ctx| {
                for i in 0..6usize {
                    let l = Arc::clone(&l);
                    ctx.spawn(format!("c{i}"), move |cctx| {
                        cctx.sleep(SimDuration::from_micros(2 + i as u64));
                        l.lock().push((cctx.now().as_micros(), i));
                    });
                    ctx.sleep(SimDuration::from_micros(3));
                }
            });
            let report = sim.run();
            report.assert_quiescent();
            let out = log.lock().clone();
            (out, report.events_processed)
        }
        assert_eq!(run(), run());
    }
}
