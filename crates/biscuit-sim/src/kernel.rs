//! The discrete-event simulation kernel.
//!
//! The kernel implements *process-interaction* simulation with cooperative
//! fibers, mirroring the cooperative multithreading the Biscuit runtime uses
//! on the SSD's ARM cores (paper §IV-B). Each simulated process ("fiber") is
//! backed by an OS thread, but **exactly one fiber runs at any instant**: the
//! scheduler resumes a fiber and then blocks until that fiber parks again.
//! Together with a deterministic `(time, sequence)` event order this makes
//! every simulation run bit-for-bit reproducible.
//!
//! Fibers interact with virtual time through a [`Ctx`] handle: they sleep,
//! spawn other fibers, and block on the synchronization primitives in
//! [`crate::queue`] and [`crate::resource`]. Wall-clock time never enters the
//! model.

use std::any::Any;
use std::collections::{BinaryHeap, VecDeque};
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Once};
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;
use rand::rngs::SmallRng;
use rand::SeedableRng;

use crate::metrics::{self, MetricsRegistry, MetricsSnapshot};
use crate::qprof::{QueryProfiler, QueryProfiles};
use crate::time::{SimDuration, SimTime};
use crate::trace::{Trace, TraceConfig, TraceEvent, Tracer};

/// Identifier of a simulated process (fiber).
pub type Pid = usize;

/// Sentinel panic payload used to unwind fibers at teardown. Filtered out of
/// the panic hook so cancellations are silent.
pub(crate) struct SimCancelled;

/// Scheduler-to-fiber resume message.
enum Resume {
    Go,
    Cancel,
}

/// Fiber-to-scheduler yield message.
enum YieldMsg {
    Parked,
    Finished {
        /// Panic payload if the fiber's body panicked (absent for clean exit
        /// and for cancellation unwinds).
        panic: Option<Box<dyn Any + Send>>,
    },
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum FiberState {
    Parked,
    Running,
    Finished,
}

struct FiberSlot {
    name: String,
    state: FiberState,
    /// Number of park sessions entered so far; a wake event is valid only if
    /// its generation matches the fiber's current park session. This is what
    /// makes `sleep` immune to stale wake-ups from abandoned wait-queue
    /// notifications.
    park_gen: u64,
    resume_tx: Sender<Resume>,
    handle: Option<JoinHandle<()>>,
}

#[derive(PartialEq, Eq)]
struct Event {
    time: SimTime,
    seq: u64,
    pid: Pid,
    gen: u64,
}

impl Ord for Event {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

struct KernelInner {
    now: SimTime,
    seq: u64,
    events: BinaryHeap<Event>,
    /// Wakes scheduled *at the current instant* (the overwhelmingly common
    /// case: queue notifications, yields, spawns). `now` never decreases and
    /// `seq` only increases, so pushes arrive in ascending `(time, seq)`
    /// order and this deque stays sorted — its front plus the heap top
    /// together give the global minimum without paying heap sift costs.
    at_now: VecDeque<Event>,
    fibers: Vec<FiberSlot>,
    rng: SmallRng,
    events_processed: u64,
}

impl KernelInner {
    /// Enqueues a wake for `(pid, gen)` at `max(at, now)`, routing at-now
    /// wakes to the FIFO fast path and future wakes to the heap. The event
    /// order is by `(time, seq)` across both queues — identical to a single
    /// heap.
    fn push_event(&mut self, at: SimTime, pid: Pid, gen: u64) {
        let seq = self.seq;
        self.seq += 1;
        let time = at.max(self.now);
        let ev = Event {
            time,
            seq,
            pid,
            gen,
        };
        if time == self.now {
            self.at_now.push_back(ev);
        } else {
            self.events.push(ev);
        }
    }

    fn pending_events(&self) -> usize {
        self.events.len() + self.at_now.len()
    }

    /// Timestamp of the event [`KernelInner::pop_event`] would return, if
    /// any. The event may still be stale (generation mismatch); callers
    /// that pause on a horizon treat a stale future event as a pause point
    /// and discard it on the next window — harmless, never reordering.
    fn peek_event_time(&self) -> Option<SimTime> {
        match (self.at_now.front(), self.events.peek()) {
            (Some(f), Some(h)) => {
                if (f.time, f.seq) < (h.time, h.seq) {
                    Some(f.time)
                } else {
                    Some(h.time)
                }
            }
            (Some(f), None) => Some(f.time),
            (None, Some(h)) => Some(h.time),
            (None, None) => None,
        }
    }

    /// Pops the earliest `(time, seq)` event across the FIFO and the heap.
    fn pop_event(&mut self) -> Option<Event> {
        let fifo_first = match (self.at_now.front(), self.events.peek()) {
            (Some(f), Some(h)) => (f.time, f.seq) < (h.time, h.seq),
            (Some(_), None) => true,
            (None, _) => false,
        };
        if fifo_first {
            self.at_now.pop_front()
        } else {
            self.events.pop()
        }
    }
}

/// Pre-registered scheduler instruments (see `docs/METRICS.md`). Handles
/// share the registry's enabled flag, so each costs one relaxed atomic load
/// while metrics are off.
struct SchedMetrics {
    fibers_spawned: metrics::Counter,
    context_switches: metrics::Counter,
    runnable: metrics::Gauge,
}

impl SchedMetrics {
    fn new(registry: &MetricsRegistry) -> Self {
        SchedMetrics {
            fibers_spawned: registry.counter("sim_fibers_spawned_total", &[]),
            context_switches: registry.counter("sim_context_switches_total", &[]),
            runnable: registry.gauge("sim_runnable_queue_depth", &[]),
        }
    }
}

/// Shared kernel state. Fibers hold an `Arc<Kernel>` through their [`Ctx`].
// Manual Debug below (KernelInner holds non-Debug channel internals).
pub struct Kernel {
    inner: Mutex<KernelInner>,
    yield_tx: Sender<(Pid, YieldMsg)>,
    tracer: Tracer,
    metrics: MetricsRegistry,
    qprof: QueryProfiler,
    sched: SchedMetrics,
}

impl std::fmt::Debug for Kernel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock();
        f.debug_struct("Kernel")
            .field("now", &inner.now)
            .field("fibers", &inner.fibers.len())
            .field("pending_events", &inner.pending_events())
            .finish()
    }
}

impl Kernel {
    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.lock().now
    }

    /// The simulation's tracer (disabled unless
    /// [`Simulation::enable_trace`] was called).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The simulation's metrics registry (disabled unless
    /// [`Simulation::enable_metrics`] was called).
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// The simulation's query profiler (disabled unless
    /// [`Simulation::enable_qprof`] was called).
    pub fn qprof(&self) -> &QueryProfiler {
        &self.qprof
    }

    /// Schedules a wake event for `(pid, gen)` at absolute time `at`.
    fn schedule_wake(&self, at: SimTime, pid: Pid, gen: u64) {
        self.inner.lock().push_event(at, pid, gen);
    }

    fn spawn_fiber<F>(self: &Arc<Self>, name: String, f: F) -> Pid
    where
        F: FnOnce(&Ctx) + Send + 'static,
    {
        let (resume_tx, resume_rx) = bounded::<Resume>(1);
        let mut inner = self.inner.lock();
        let pid = inner.fibers.len();
        let kernel = Arc::clone(self);
        let thread_name = format!("sim-{pid}-{name}");
        let handle = std::thread::Builder::new()
            .name(thread_name)
            .stack_size(512 * 1024)
            .spawn(move || fiber_main(kernel, pid, resume_rx, f))
            .expect("failed to spawn fiber thread");
        let trace_name: Option<Arc<str>> = if self.tracer.is_enabled() {
            Some(Arc::from(name.as_str()))
        } else {
            None
        };
        inner.fibers.push(FiberSlot {
            name,
            state: FiberState::Parked,
            park_gen: 1,
            resume_tx,
            handle: Some(handle),
        });
        // First resume at the current time, generation 1 (the initial park).
        let now = inner.now;
        inner.push_event(now, pid, 1);
        drop(inner);
        self.sched.fibers_spawned.inc();
        // Causal inheritance: the new fiber starts under whatever query
        // context the spawning fiber carries.
        self.qprof.on_spawn(pid);
        if let Some(name) = trace_name {
            self.tracer
                .record(TraceEvent::FiberSpawn { at: now, pid, name });
        }
        pid
    }
}

fn fiber_main<F>(kernel: Arc<Kernel>, pid: Pid, resume_rx: Receiver<Resume>, f: F)
where
    F: FnOnce(&Ctx) + Send + 'static,
{
    // Initial park: wait for the scheduler's first resume.
    match resume_rx.recv() {
        Ok(Resume::Go) => {}
        Ok(Resume::Cancel) | Err(_) => {
            let _ = kernel
                .yield_tx
                .send((pid, YieldMsg::Finished { panic: None }));
            return;
        }
    }
    let ctx = Ctx {
        kernel: Arc::clone(&kernel),
        pid,
        resume_rx,
    };
    let result = panic::catch_unwind(AssertUnwindSafe(|| f(&ctx)));
    let payload = match result {
        Ok(()) => None,
        Err(p) if p.downcast_ref::<SimCancelled>().is_some() => None,
        Err(p) => Some(p),
    };
    let _ = kernel
        .yield_tx
        .send((pid, YieldMsg::Finished { panic: payload }));
}

/// Handle a fiber uses to interact with virtual time.
///
/// A `Ctx` is passed by reference into every fiber body and every blocking
/// primitive. It identifies the calling fiber and carries the kernel
/// reference used to schedule and wait for events.
pub struct Ctx {
    kernel: Arc<Kernel>,
    pid: Pid,
    resume_rx: Receiver<Resume>,
}

impl std::fmt::Debug for Ctx {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Ctx").field("pid", &self.pid).finish()
    }
}

impl Ctx {
    /// The calling fiber's process id.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.kernel.now()
    }

    /// Suspends the fiber for `d` of virtual time.
    pub fn sleep(&self, d: SimDuration) {
        if d.is_zero() {
            return;
        }
        {
            let mut inner = self.kernel.inner.lock();
            let at = inner.now + d;
            let gen = inner.fibers[self.pid].park_gen + 1;
            inner.push_event(at, self.pid, gen);
        }
        self.park();
    }

    /// Suspends the fiber until absolute time `at` (no-op if `at` has passed).
    pub fn sleep_until(&self, at: SimTime) {
        let now = self.now();
        if at > now {
            self.sleep(at - now);
        }
    }

    /// Yields to other fibers runnable at the current instant.
    pub fn yield_now(&self) {
        {
            let mut inner = self.kernel.inner.lock();
            let now = inner.now;
            let gen = inner.fibers[self.pid].park_gen + 1;
            inner.push_event(now, self.pid, gen);
        }
        self.park();
    }

    /// Spawns a new fiber that starts at the current virtual time.
    ///
    /// Returns the new fiber's [`Pid`].
    pub fn spawn<F>(&self, name: impl Into<String>, f: F) -> Pid
    where
        F: FnOnce(&Ctx) + Send + 'static,
    {
        self.kernel.spawn_fiber(name.into(), f)
    }

    /// Runs `f` with the simulation's deterministic random number generator.
    pub fn with_rng<R>(&self, f: impl FnOnce(&mut SmallRng) -> R) -> R {
        f(&mut self.kernel.inner.lock().rng)
    }

    /// The simulation's metrics registry. Fibers (e.g. bench bodies) use
    /// this to attach device components mid-run via their
    /// `set_metrics`/`attach_metrics` methods.
    pub fn metrics(&self) -> &MetricsRegistry {
        self.kernel.metrics()
    }

    /// The simulation's query profiler. Query entry points use this to
    /// mint [`crate::qprof::SpanContext`]s and record resource spans.
    pub fn qprof(&self) -> &QueryProfiler {
        self.kernel.qprof()
    }

    /// Registers the fiber's *next* park generation; used by wait queues to
    /// target a wake at the park the fiber is about to enter.
    pub(crate) fn next_park_gen(&self) -> u64 {
        self.kernel.inner.lock().fibers[self.pid].park_gen + 1
    }

    /// Schedules a wake for `(pid, gen)` at the current time. Used by wait
    /// queues when notifying.
    pub(crate) fn wake_at_now(&self, pid: Pid, gen: u64) {
        let mut inner = self.kernel.inner.lock();
        let now = inner.now;
        inner.push_event(now, pid, gen);
    }

    /// Schedules a wake for `(pid, gen)` at absolute time `at`. Used by
    /// deadline-aware waits to arm a timeout alongside a queue
    /// registration; whichever wake fires first wins and the loser goes
    /// stale via the generation check.
    pub(crate) fn wake_at(&self, at: SimTime, pid: Pid, gen: u64) {
        self.kernel.schedule_wake(at, pid, gen);
    }

    /// Parks the calling fiber until a matching wake event fires.
    ///
    /// Callers must have arranged for a wake targeting the fiber's next park
    /// generation (via [`Ctx::sleep`], a wait queue registration, etc.),
    /// otherwise the fiber blocks until simulation teardown.
    pub(crate) fn park(&self) {
        let now = {
            let mut inner = self.kernel.inner.lock();
            let slot = &mut inner.fibers[self.pid];
            slot.park_gen += 1;
            slot.state = FiberState::Parked;
            inner.now
        };
        // Emitted before the Parked handshake, so the scheduler (which is
        // blocked on yield_rx until then) cannot interleave its own events.
        self.kernel.tracer.emit(|| TraceEvent::FiberBlock {
            at: now,
            pid: self.pid,
        });
        self.kernel
            .yield_tx
            .send((self.pid, YieldMsg::Parked))
            .expect("scheduler hung up");
        match self.resume_rx.recv() {
            Ok(Resume::Go) => {}
            Ok(Resume::Cancel) | Err(_) => panic::panic_any(SimCancelled),
        }
    }
}

/// Summary returned by [`Simulation::run`].
#[derive(Debug)]
pub struct SimReport {
    /// Virtual time when the event queue drained.
    pub end_time: SimTime,
    /// Names of fibers that were still blocked when the simulation ended
    /// (normally empty for well-terminating workloads).
    pub blocked: Vec<String>,
    /// Total fibers spawned over the simulation's lifetime.
    pub fibers_spawned: usize,
    /// Total wake events processed.
    pub events_processed: u64,
    /// Snapshot of the structured event trace (empty unless
    /// [`Simulation::enable_trace`] was called). Export it with
    /// [`Trace::to_chrome_json`] or summarize it with [`Trace::metrics`].
    pub trace: Trace,
    /// Snapshot of the aggregate metrics registry (empty unless
    /// [`Simulation::enable_metrics`] was called). Export it with
    /// [`MetricsSnapshot::to_json`] or [`MetricsSnapshot::to_prometheus`].
    pub metrics: MetricsSnapshot,
    /// Per-query latency profiles (empty unless
    /// [`Simulation::enable_qprof`] was called). Export with
    /// [`QueryProfiles::to_json`] or render with [`QueryProfiles::to_table`].
    pub profiles: QueryProfiles,
}

impl SimReport {
    /// Asserts that every fiber terminated (no deadlocked/blocked fibers).
    ///
    /// # Panics
    ///
    /// Panics if any fiber was still blocked at teardown.
    pub fn assert_quiescent(&self) {
        assert!(
            self.blocked.is_empty(),
            "simulation ended with blocked fibers: {:?}",
            self.blocked
        );
    }
}

/// Outcome of one [`Simulation::run_until`] call.
///
/// A shard kernel driven in bounded windows (see [`crate::par`]) reports
/// through this enum whether it still has pending virtual-time work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// The event queue drained: no fiber has a pending wake. The kernel
    /// may still hold parked fibers (they are reported as blocked by
    /// [`Simulation::finish`]).
    Drained,
    /// Events remain, but the earliest is beyond the requested horizon.
    Paused {
        /// Timestamp of the earliest pending event (always greater than
        /// the `limit` passed to [`Simulation::run_until`]).
        next: SimTime,
    },
    /// A fiber panicked. The payload is held and re-raised by
    /// [`Simulation::finish`] (or [`Simulation::run`]); further
    /// `run_until` calls return `Panicked` without processing events.
    Panicked,
}

/// A discrete-event simulation instance.
///
/// # Examples
///
/// ```
/// use biscuit_sim::{Simulation, time::SimDuration};
/// use std::sync::{Arc, atomic::{AtomicU64, Ordering}};
///
/// let sim = Simulation::new(42);
/// let done_at = Arc::new(AtomicU64::new(0));
/// let d = Arc::clone(&done_at);
/// sim.spawn("worker", move |ctx| {
///     ctx.sleep(SimDuration::from_micros(10));
///     d.store(ctx.now().as_micros(), Ordering::SeqCst);
/// });
/// let report = sim.run();
/// assert_eq!(done_at.load(Ordering::SeqCst), 10);
/// report.assert_quiescent();
/// ```
///
/// ## Driving a kernel in bounded windows
///
/// [`Simulation::run`] executes to completion. A simulation can instead be
/// driven as an independent *shard kernel*: [`Simulation::run_until`]
/// processes events up to a virtual-time horizon and pauses, and
/// [`Simulation::finish`] tears down and produces the [`SimReport`]. The
/// event order is identical however the run is partitioned — windows only
/// decide when control returns to the caller, never which event runs next:
///
/// ```
/// use biscuit_sim::kernel::RunStatus;
/// use biscuit_sim::{Simulation, SimTime, time::SimDuration};
///
/// let mut sim = Simulation::new(0);
/// sim.spawn("worker", |ctx| {
///     for _ in 0..10 {
///         ctx.sleep(SimDuration::from_micros(3));
///     }
/// });
/// // Drive in 10 us lookahead windows until the shard drains.
/// let mut horizon = SimTime::ZERO + SimDuration::from_micros(10);
/// while let RunStatus::Paused { .. } = sim.run_until(horizon) {
///     horizon = horizon + SimDuration::from_micros(10);
/// }
/// let report = sim.finish();
/// assert_eq!(report.end_time.as_micros(), 30);
/// report.assert_quiescent();
/// ```
pub struct Simulation {
    kernel: Arc<Kernel>,
    yield_rx: Receiver<(Pid, YieldMsg)>,
    max_events: u64,
    finished: bool,
    /// First fiber panic observed by `run_until`; re-raised by `finish`.
    first_panic: Option<Box<dyn Any + Send>>,
}

impl std::fmt::Debug for Simulation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("now", &self.kernel.now())
            .finish()
    }
}

fn install_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<SimCancelled>().is_none() {
                prev(info);
            }
        }));
    });
}

impl Simulation {
    /// Creates a simulation with the given RNG seed.
    ///
    /// The same seed always produces the same run.
    pub fn new(seed: u64) -> Self {
        install_panic_hook();
        let (yield_tx, yield_rx) = unbounded();
        let metrics = MetricsRegistry::new();
        let sched = SchedMetrics::new(&metrics);
        let kernel = Arc::new(Kernel {
            inner: Mutex::new(KernelInner {
                now: SimTime::ZERO,
                seq: 0,
                // Pre-sized so steady-state scheduling never reallocates.
                events: BinaryHeap::with_capacity(1024),
                at_now: VecDeque::with_capacity(256),
                fibers: Vec::new(),
                rng: SmallRng::seed_from_u64(seed),
                events_processed: 0,
            }),
            yield_tx,
            tracer: Tracer::new(),
            metrics,
            qprof: QueryProfiler::new(),
            sched,
        });
        Simulation {
            kernel,
            yield_rx,
            max_events: u64::MAX,
            finished: false,
            first_panic: None,
        }
    }

    /// Caps the number of wake events processed (a livelock backstop).
    /// Exceeding the cap aborts the run with a panic.
    pub fn set_max_events(&mut self, max: u64) {
        self.max_events = max;
    }

    /// Shared kernel handle (needed by library code that schedules work).
    pub fn kernel(&self) -> &Arc<Kernel> {
        &self.kernel
    }

    /// Enables structured event tracing for this simulation, resetting the
    /// trace buffer to `cfg.capacity` events. Attach the returned/shared
    /// [`Tracer`] (see [`Simulation::tracer`]) to device components to
    /// capture their events too; the final [`SimReport::trace`] holds the
    /// recorded snapshot.
    pub fn enable_trace(&self, cfg: TraceConfig) {
        self.kernel.tracer.enable(cfg);
    }

    /// The simulation's tracer handle (disabled until
    /// [`Simulation::enable_trace`]). Clone it into queues, resources, and
    /// devices via their `set_trace`/`attach_tracer` methods.
    pub fn tracer(&self) -> &Tracer {
        self.kernel.tracer()
    }

    /// Enables aggregate metrics collection for this simulation. Attach the
    /// shared [`MetricsRegistry`] (see [`Simulation::metrics`]) to device
    /// components via their `set_metrics`/`attach_metrics` methods; the
    /// final [`SimReport::metrics`] holds the recorded snapshot.
    pub fn enable_metrics(&self) {
        self.kernel.metrics.enable();
    }

    /// The simulation's metrics registry handle (disabled until
    /// [`Simulation::enable_metrics`]). Clone it into queues, resources,
    /// and devices via their `set_metrics`/`attach_metrics` methods.
    pub fn metrics(&self) -> &MetricsRegistry {
        self.kernel.metrics()
    }

    /// Enables query-scoped profiling for this simulation. Query entry
    /// points mint [`crate::qprof::SpanContext`]s through the shared
    /// [`QueryProfiler`]; the final [`SimReport::profiles`] holds the
    /// derived per-query latency attributions. Pure observation: enabling
    /// it never changes simulated timing or event counts.
    pub fn enable_qprof(&self) {
        self.kernel.qprof.enable();
    }

    /// The simulation's query profiler handle (disabled until
    /// [`Simulation::enable_qprof`]).
    pub fn qprof(&self) -> &QueryProfiler {
        self.kernel.qprof()
    }

    /// Spawns a fiber that starts at the current virtual time.
    pub fn spawn<F>(&self, name: impl Into<String>, f: F) -> Pid
    where
        F: FnOnce(&Ctx) + Send + 'static,
    {
        self.kernel.spawn_fiber(name.into(), f)
    }

    /// Runs the simulation until the event queue drains, then tears down any
    /// still-blocked fibers.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic that occurred inside a fiber, and panics if
    /// the configured event cap is exceeded.
    pub fn run(mut self) -> SimReport {
        let _ = self.run_until(SimTime::MAX);
        self.finish()
    }

    /// Processes every event with timestamp at or before `limit`, then
    /// returns control to the caller.
    ///
    /// This is the *shard kernel* entry point for conservative parallel DES
    /// (see [`crate::par`] and `docs/PARALLEL.md`): a coordinator owns N
    /// independent simulations and advances each in bounded lookahead
    /// windows on its own OS thread. Partitioning a run into windows never
    /// changes the event order — events execute in global `(time, seq)`
    /// order exactly as under [`Simulation::run`] — so traces, metrics, and
    /// results are byte-identical for any window schedule, including
    /// `run_until(SimTime::MAX)`.
    ///
    /// After [`RunStatus::Drained`] the queue may refill if a still-parked
    /// fiber is woken by outside action; calling `run_until` again resumes
    /// processing. After [`RunStatus::Panicked`] the kernel stops
    /// scheduling; call [`Simulation::finish`] to re-raise the payload.
    ///
    /// # Panics
    ///
    /// Panics if the configured event cap is exceeded.
    pub fn run_until(&mut self, limit: SimTime) -> RunStatus {
        if self.first_panic.is_some() {
            return RunStatus::Panicked;
        }
        loop {
            // Pop the next valid event at or before the horizon.
            let next = {
                let mut inner = self.kernel.inner.lock();
                loop {
                    match inner.peek_event_time() {
                        None => break None,
                        Some(t) if t > limit => break Some(Err(t)),
                        Some(_) => {}
                    }
                    let ev = inner.pop_event().expect("peeked event exists");
                    let slot = &inner.fibers[ev.pid];
                    if slot.state == FiberState::Parked && slot.park_gen == ev.gen {
                        inner.now = ev.time;
                        inner.events_processed += 1;
                        if inner.events_processed > self.max_events {
                            drop(inner);
                            self.teardown();
                            panic!("simulation exceeded event cap");
                        }
                        let tx = inner.fibers[ev.pid].resume_tx.clone();
                        inner.fibers[ev.pid].state = FiberState::Running;
                        break Some(Ok((ev.pid, tx, ev.time, inner.pending_events())));
                    }
                    // Stale wake: generation mismatch or fiber done.
                }
            };
            let (pid, tx, at, pending) = match next {
                None => return RunStatus::Drained,
                Some(Err(t)) => return RunStatus::Paused { next: t },
                Some(Ok(ev)) => ev,
            };
            self.kernel.sched.context_switches.inc();
            self.kernel.sched.runnable.set(pending as i64);
            self.kernel.qprof.on_switch(pid);
            self.kernel
                .tracer
                .emit(|| TraceEvent::FiberResume { at, pid });
            tx.send(Resume::Go).expect("fiber hung up");
            // Wait until that fiber parks or finishes.
            match self.yield_rx.recv().expect("all fibers hung up") {
                (_, YieldMsg::Parked) => {}
                (fpid, YieldMsg::Finished { panic }) => {
                    debug_assert_eq!(fpid, pid);
                    let mut inner = self.kernel.inner.lock();
                    inner.fibers[fpid].state = FiberState::Finished;
                    let handle = inner.fibers[fpid].handle.take();
                    let now = inner.now;
                    drop(inner);
                    self.kernel
                        .tracer
                        .emit(|| TraceEvent::FiberFinish { at: now, pid: fpid });
                    if let Some(h) = handle {
                        let _ = h.join();
                    }
                    if let Some(p) = panic {
                        self.first_panic.get_or_insert(p);
                    }
                }
            }
            if self.first_panic.is_some() {
                return RunStatus::Panicked;
            }
        }
    }

    /// Timestamp of the earliest pending wake event, or `None` when the
    /// queue is drained. The returned event may be a stale wake (it would
    /// be discarded, not dispatched); windowed drivers only use this to
    /// pace horizons, so an occasional stale timestamp is harmless.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.kernel.inner.lock().peek_event_time()
    }

    /// Wake events processed so far (the wall-clock bench's sim-events
    /// numerator, readable mid-run when driving windows).
    pub fn events_processed(&self) -> u64 {
        self.kernel.inner.lock().events_processed
    }

    /// Builds the final [`SimReport`] and tears down any still-parked
    /// fibers. Use after driving the kernel with [`Simulation::run_until`];
    /// [`Simulation::run`] is exactly `run_until(SimTime::MAX)` + `finish`.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic that occurred inside a fiber.
    pub fn finish(mut self) -> SimReport {
        let report = self.build_report();
        self.teardown();
        self.finished = true;
        if let Some(p) = self.first_panic.take() {
            panic::resume_unwind(p);
        }
        report
    }

    fn build_report(&self) -> SimReport {
        let trace = self.kernel.tracer.snapshot();
        // Surface ring-buffer truncation: silently dropped events would
        // otherwise make a trace look complete when it is not.
        if trace.dropped() > 0 {
            self.kernel
                .metrics
                .counter("trace_dropped_total", &[])
                .add(trace.dropped());
        }
        let inner = self.kernel.inner.lock();
        self.kernel.metrics.set_horizon(inner.now);
        SimReport {
            end_time: inner.now,
            blocked: inner
                .fibers
                .iter()
                .filter(|f| f.state == FiberState::Parked)
                .map(|f| f.name.clone())
                .collect(),
            fibers_spawned: inner.fibers.len(),
            events_processed: inner.events_processed,
            trace,
            metrics: self.kernel.metrics.snapshot(),
            profiles: self.kernel.qprof.snapshot(),
        }
    }

    /// Cancels all parked fibers and joins their threads.
    fn teardown(&self) {
        loop {
            // Cancel parked fibers one by one; each cancellation may cause the
            // fiber to finish, which we must observe via yield_rx.
            let target = {
                let inner = self.kernel.inner.lock();
                inner
                    .fibers
                    .iter()
                    .position(|f| f.state == FiberState::Parked)
            };
            let Some(pid) = target else { break };
            let tx = {
                let mut inner = self.kernel.inner.lock();
                inner.fibers[pid].state = FiberState::Running;
                inner.fibers[pid].resume_tx.clone()
            };
            let _ = tx.send(Resume::Cancel);
            // Drain messages until this fiber reports Finished. A cancelled
            // fiber unwinds without parking again, so the next message from it
            // is Finished; messages from other fibers cannot arrive (they are
            // all parked).
            loop {
                match self.yield_rx.recv() {
                    Ok((fpid, YieldMsg::Finished { .. })) => {
                        let mut inner = self.kernel.inner.lock();
                        inner.fibers[fpid].state = FiberState::Finished;
                        let handle = inner.fibers[fpid].handle.take();
                        drop(inner);
                        if let Some(h) = handle {
                            let _ = h.join();
                        }
                        if fpid == pid {
                            break;
                        }
                    }
                    Ok((_, YieldMsg::Parked)) => {
                        // A cancelled fiber cannot park (cancel unwinds), but
                        // be defensive: ignore.
                    }
                    Err(_) => return,
                }
            }
        }
    }
}

impl Drop for Simulation {
    fn drop(&mut self) {
        if !self.finished {
            self.teardown();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    #[test]
    fn empty_simulation_terminates() {
        let report = Simulation::new(0).run();
        assert_eq!(report.end_time, SimTime::ZERO);
        assert_eq!(report.fibers_spawned, 0);
        report.assert_quiescent();
    }

    #[test]
    fn sleep_advances_virtual_time() {
        let sim = Simulation::new(0);
        let t = Arc::new(AtomicU64::new(0));
        let t2 = Arc::clone(&t);
        sim.spawn("a", move |ctx| {
            ctx.sleep(SimDuration::from_micros(100));
            ctx.sleep(SimDuration::from_micros(23));
            t2.store(ctx.now().as_micros(), Ordering::SeqCst);
        });
        let report = sim.run();
        assert_eq!(t.load(Ordering::SeqCst), 123);
        assert_eq!(report.end_time.as_micros(), 123);
        report.assert_quiescent();
    }

    #[test]
    fn fibers_interleave_deterministically() {
        // Two runs with the same seed produce identical schedules.
        fn trace() -> Vec<(u64, usize)> {
            let sim = Simulation::new(7);
            let log = Arc::new(Mutex::new(Vec::new()));
            for id in 0..3usize {
                let log = Arc::clone(&log);
                sim.spawn(format!("f{id}"), move |ctx| {
                    for step in 0..4u64 {
                        ctx.sleep(SimDuration::from_micros(10 * (id as u64 + 1) + step));
                        log.lock().push((ctx.now().as_micros(), id));
                    }
                });
            }
            sim.run().assert_quiescent();
            let result = log.lock().clone();
            result
        }
        let a = trace();
        let b = trace();
        assert_eq!(a, b);
        assert_eq!(a.len(), 12);
        // Timestamps are monotonically non-decreasing in schedule order.
        assert!(a.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn spawn_from_fiber() {
        let sim = Simulation::new(0);
        let count = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&count);
        sim.spawn("parent", move |ctx| {
            for _ in 0..5 {
                let c = Arc::clone(&c);
                ctx.spawn("child", move |cctx| {
                    cctx.sleep(SimDuration::from_micros(1));
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        let report = sim.run();
        assert_eq!(count.load(Ordering::SeqCst), 5);
        assert_eq!(report.fibers_spawned, 6);
        report.assert_quiescent();
    }

    #[test]
    fn same_time_events_run_in_spawn_order() {
        let sim = Simulation::new(0);
        let log = Arc::new(Mutex::new(Vec::new()));
        for id in 0..4usize {
            let log = Arc::clone(&log);
            sim.spawn(format!("f{id}"), move |_ctx| {
                log.lock().push(id);
            });
        }
        sim.run().assert_quiescent();
        assert_eq!(*log.lock(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn blocked_fiber_is_reported_and_cancelled() {
        let sim = Simulation::new(0);
        sim.spawn("stuck", |ctx| {
            // Park with no wake source: blocks forever.
            ctx.park();
            unreachable!("cancelled fibers unwind instead of returning");
        });
        let report = sim.run();
        assert_eq!(report.blocked, vec!["stuck".to_string()]);
    }

    #[test]
    fn fiber_panic_propagates() {
        let sim = Simulation::new(0);
        sim.spawn("boom", |_ctx| panic!("exploded"));
        let err = panic::catch_unwind(AssertUnwindSafe(|| sim.run())).unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "exploded");
    }

    #[test]
    fn rng_is_deterministic() {
        fn draw() -> Vec<u64> {
            use rand::Rng;
            let sim = Simulation::new(99);
            let out = Arc::new(Mutex::new(Vec::new()));
            let o = Arc::clone(&out);
            sim.spawn("r", move |ctx| {
                for _ in 0..8 {
                    let v = ctx.with_rng(|r| r.random::<u64>());
                    o.lock().push(v);
                }
            });
            sim.run().assert_quiescent();
            let result = out.lock().clone();
            result
        }
        assert_eq!(draw(), draw());
    }

    #[test]
    fn yield_now_lets_peers_run() {
        let sim = Simulation::new(0);
        let log = Arc::new(Mutex::new(Vec::new()));
        let l1 = Arc::clone(&log);
        let l2 = Arc::clone(&log);
        sim.spawn("a", move |ctx| {
            l1.lock().push("a1");
            ctx.yield_now();
            l1.lock().push("a2");
        });
        sim.spawn("b", move |_ctx| {
            l2.lock().push("b1");
        });
        sim.run().assert_quiescent();
        assert_eq!(*log.lock(), vec!["a1", "b1", "a2"]);
    }

    /// A three-fiber workload driven (a) to completion with `run` and (b) in
    /// bounded windows with `run_until` produces the same schedule log and
    /// report — windows decide when control returns, never what runs next.
    #[test]
    fn windowed_run_matches_run_to_completion() {
        fn build(sim: &Simulation) -> Arc<Mutex<Vec<(u64, usize)>>> {
            let log = Arc::new(Mutex::new(Vec::new()));
            for id in 0..3usize {
                let log = Arc::clone(&log);
                sim.spawn(format!("f{id}"), move |ctx| {
                    for step in 0..5u64 {
                        ctx.sleep(SimDuration::from_micros(7 * (id as u64 + 1) + step));
                        log.lock().push((ctx.now().as_micros(), id));
                    }
                });
            }
            log
        }
        let sim = Simulation::new(3);
        let log_full = build(&sim);
        let full = sim.run();
        full.assert_quiescent();

        // Re-run in 5 us windows; also exercise Paused::next pacing.
        let mut sim = Simulation::new(3);
        let log_win = build(&sim);
        let mut horizon = SimTime::ZERO + SimDuration::from_micros(5);
        let windowed = loop {
            match sim.run_until(horizon) {
                RunStatus::Drained => break sim.finish(),
                RunStatus::Paused { next } => {
                    assert!(next > horizon);
                    horizon = horizon + SimDuration::from_micros(5);
                }
                RunStatus::Panicked => unreachable!("no fiber panics here"),
            }
        };
        windowed.assert_quiescent();

        assert_eq!(*log_full.lock(), *log_win.lock());
        assert_eq!(full.end_time, windowed.end_time);
        assert_eq!(full.events_processed, windowed.events_processed);
    }

    #[test]
    fn run_until_pauses_at_horizon() {
        let mut sim = Simulation::new(0);
        sim.spawn("w", |ctx| {
            ctx.sleep(SimDuration::from_micros(100));
        });
        // The spawn wake at t=0 runs; the sleep wake at t=100 is past the
        // horizon, so the kernel pauses and reports it.
        let status = sim.run_until(SimTime::ZERO + SimDuration::from_micros(10));
        assert_eq!(
            status,
            RunStatus::Paused {
                next: SimTime::ZERO + SimDuration::from_micros(100)
            }
        );
        assert_eq!(
            sim.next_event_time(),
            Some(SimTime::ZERO + SimDuration::from_micros(100))
        );
        assert_eq!(sim.run_until(SimTime::MAX), RunStatus::Drained);
        let report = sim.finish();
        assert_eq!(report.end_time.as_micros(), 100);
        report.assert_quiescent();
    }

    #[test]
    fn run_until_reports_panic_and_finish_reraises() {
        let mut sim = Simulation::new(0);
        sim.spawn("boom", |ctx| {
            ctx.sleep(SimDuration::from_micros(5));
            panic!("windowed explosion");
        });
        assert_eq!(sim.run_until(SimTime::MAX), RunStatus::Panicked);
        // Subsequent windows refuse to schedule.
        assert_eq!(sim.run_until(SimTime::MAX), RunStatus::Panicked);
        let err = panic::catch_unwind(AssertUnwindSafe(|| sim.finish())).unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "windowed explosion");
    }

    #[test]
    fn event_cap_aborts() {
        let mut sim = Simulation::new(0);
        sim.set_max_events(10);
        sim.spawn("spin", |ctx| loop {
            ctx.sleep(SimDuration::from_nanos(1));
        });
        let err = panic::catch_unwind(AssertUnwindSafe(|| sim.run())).unwrap_err();
        let msg = err.downcast_ref::<&str>().copied().unwrap_or_default();
        assert!(msg.contains("event cap"));
    }
}
