//! Structured, deterministic event tracing for the simulation.
//!
//! Every layer of the Biscuit stack can record typed [`TraceEvent`]s into a
//! per-simulation [`Tracer`] — fiber scheduling, queue depths, FCFS resource
//! spans, NAND operations, pattern-matcher invocations, port traffic, and
//! the DB planner's offload verdicts. Events are stamped with [`SimTime`]
//! (integer picoseconds), so two runs with the same seed produce
//! byte-identical traces.
//!
//! A captured [`Trace`] exports two ways:
//!
//! - [`Trace::to_chrome_json`] — the Chrome `trace_event` format, loadable
//!   in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev): fibers
//!   as one thread track each, device resources (NAND dies, channel buses,
//!   pattern matchers, CPU cores, the PCIe link) as span tracks, queue
//!   depths as counter tracks, and port/planner activity as instants;
//! - [`Trace::metrics`] — a flat [`TraceMetrics`] summary: per-component
//!   busy time, utilization, operation counts, and bytes moved.
//!
//! Tracing is **off by default** and costs one relaxed atomic load per
//! instrumentation site when disabled ([`Tracer::emit`] takes a closure, so
//! no event is even constructed). Enable it per simulation:
//!
//! ```
//! use biscuit_sim::{Simulation, trace::TraceConfig, time::SimDuration};
//!
//! let sim = Simulation::new(0);
//! sim.enable_trace(TraceConfig::default());
//! sim.spawn("worker", |ctx| ctx.sleep(SimDuration::from_micros(5)));
//! let report = sim.run();
//! assert!(!report.trace.is_empty());
//! let json = report.trace.to_chrome_json();
//! assert!(json.starts_with(r#"{"traceEvents":["#));
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::kernel::Pid;
use crate::qprof::QueryProfiles;
use crate::time::{SimDuration, SimTime};

/// Configuration for a simulation's tracer.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Maximum buffered events. When the ring fills, the oldest events are
    /// overwritten and [`Trace::dropped`] counts what was lost.
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { capacity: 1 << 20 }
    }
}

impl TraceConfig {
    /// A config with an explicit ring capacity.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "trace capacity must be positive");
        TraceConfig { capacity }
    }

    /// Reads the `BISCUIT_TRACE` environment variable: returns a default
    /// config when it is set and non-empty. Examples and harnesses use the
    /// variable's value as the output path for the exported JSON, so
    /// `BISCUIT_TRACE=trace.json cargo run --example quickstart` both
    /// enables tracing and names the file.
    pub fn from_env() -> Option<Self> {
        match std::env::var("BISCUIT_TRACE") {
            Ok(v) if !v.is_empty() => Some(TraceConfig::default()),
            _ => None,
        }
    }
}

/// Kind of a NAND array operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NandOpKind {
    /// A page sense (`tR`).
    Read,
    /// A page program (`tPROG`).
    Program,
    /// Block erase / garbage-collection work charged to a write.
    Erase,
}

impl NandOpKind {
    fn as_str(self) -> &'static str {
        match self {
            NandOpKind::Read => "read",
            NandOpKind::Program => "program",
            NandOpKind::Erase => "erase/gc",
        }
    }
}

/// One structured simulation event.
///
/// Span-shaped events carry `(start, end)` pairs in virtual time; point
/// events carry a single `at`. Because FCFS resources are *reservation*
/// based ([`crate::resource::Shaper::enqueue`] returns a completion time in
/// the future), span ends may exceed the recording instant — the Chrome
/// export stable-sorts by start time so the result is always monotonic.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A fiber was created.
    FiberSpawn {
        /// Spawn time.
        at: SimTime,
        /// The new fiber's id.
        pid: Pid,
        /// The new fiber's name.
        name: Arc<str>,
    },
    /// The scheduler resumed a fiber.
    FiberResume {
        /// Resume time.
        at: SimTime,
        /// The fiber's id.
        pid: Pid,
    },
    /// A fiber parked (blocked on time or a synchronization primitive).
    FiberBlock {
        /// Park time.
        at: SimTime,
        /// The fiber's id.
        pid: Pid,
    },
    /// A fiber's body returned.
    FiberFinish {
        /// Finish time.
        at: SimTime,
        /// The fiber's id.
        pid: Pid,
    },
    /// An item entered a traced [`crate::queue::SimQueue`].
    QueuePush {
        /// Push time.
        at: SimTime,
        /// The queue's label.
        queue: Arc<str>,
        /// Buffered items after the push.
        depth: usize,
    },
    /// An item left a traced [`crate::queue::SimQueue`].
    QueuePop {
        /// Pop time.
        at: SimTime,
        /// The queue's label.
        queue: Arc<str>,
        /// Buffered items after the pop.
        depth: usize,
    },
    /// A reservation on a traced FCFS resource (shaper or server bank).
    ResourceSpan {
        /// The resource's label.
        resource: Arc<str>,
        /// Server index within a bank; `None` for single-pipe shapers.
        server: Option<usize>,
        /// Service start (after queueing behind earlier reservations).
        start: SimTime,
        /// Service completion.
        end: SimTime,
        /// Bytes served (zero for pure time charges).
        bytes: u64,
    },
    /// A NAND die operation.
    NandOp {
        /// Operation kind.
        kind: NandOpKind,
        /// Flash channel.
        channel: u32,
        /// Way (die within the channel).
        way: u32,
        /// Service start on the die.
        start: SimTime,
        /// Service completion.
        end: SimTime,
    },
    /// A page transfer over a flash channel bus.
    ChannelTransfer {
        /// Flash channel.
        channel: u32,
        /// Transfer start.
        start: SimTime,
        /// Transfer completion.
        end: SimTime,
        /// Bytes moved.
        bytes: u64,
    },
    /// A page streamed through a per-channel pattern-matcher IP.
    PatternScan {
        /// Flash channel.
        channel: u32,
        /// Stream start.
        start: SimTime,
        /// Stream completion.
        end: SimTime,
        /// Bytes streamed.
        bytes: u64,
        /// Whether the page matched the pattern set.
        matched: bool,
    },
    /// A message was sent on a traced port connection.
    PortSend {
        /// Send time (after send-side charges).
        at: SimTime,
        /// The connection's label.
        port: Arc<str>,
        /// Port kind (`"inter-ssdlet"`, `"d2h"`, ...).
        kind: &'static str,
        /// Encoded payload bytes (zero for native typed ports).
        bytes: u64,
    },
    /// A message was received on a traced port connection.
    PortRecv {
        /// Receive completion time (after receive-side charges).
        at: SimTime,
        /// The connection's label.
        port: Arc<str>,
        /// Port kind.
        kind: &'static str,
        /// Encoded payload bytes (zero for native typed ports).
        bytes: u64,
    },
    /// The DB planner decided whether to offload one table scan.
    OffloadVerdict {
        /// Decision time.
        at: SimTime,
        /// Table name.
        table: Arc<str>,
        /// Whether the scan was pushed to the device.
        offloaded: bool,
        /// Sampled row selectivity (1.0 when not sampled).
        est_selectivity: f64,
        /// Why the planner decided this way.
        reason: &'static str,
    },
    /// A fault was injected at an instrumented site (see
    /// [`crate::fault::FaultPlan`]).
    FaultInjected {
        /// Injection time.
        at: SimTime,
        /// Site label (`"nand_read"`, `"link_to_host"`, ...).
        site: &'static str,
        /// Free-form detail (retry counts, affected block, ...).
        detail: Arc<str>,
    },
    /// A recovery policy absorbed a previously injected fault.
    FaultRecovered {
        /// Recovery completion time.
        at: SimTime,
        /// Site label of the recovered fault.
        site: &'static str,
        /// Recovery policy (`"read_retry"`, `"link_replay"`, ...).
        action: &'static str,
    },
    /// A recovery policy exhausted its budget; a higher layer must degrade.
    FaultFailed {
        /// Failure time.
        at: SimTime,
        /// Site label of the unrecovered fault.
        site: &'static str,
        /// The policy that gave up (`"restart"`, `"host_timeout"`, ...).
        action: &'static str,
    },
    /// A free-form application marker.
    Mark {
        /// Marker time.
        at: SimTime,
        /// Marker name.
        name: Arc<str>,
        /// Extra detail.
        detail: Arc<str>,
    },
}

impl TraceEvent {
    /// The event's primary timestamp (start time for spans).
    pub fn timestamp(&self) -> SimTime {
        match self {
            TraceEvent::FiberSpawn { at, .. }
            | TraceEvent::FiberResume { at, .. }
            | TraceEvent::FiberBlock { at, .. }
            | TraceEvent::FiberFinish { at, .. }
            | TraceEvent::QueuePush { at, .. }
            | TraceEvent::QueuePop { at, .. }
            | TraceEvent::PortSend { at, .. }
            | TraceEvent::PortRecv { at, .. }
            | TraceEvent::OffloadVerdict { at, .. }
            | TraceEvent::FaultInjected { at, .. }
            | TraceEvent::FaultRecovered { at, .. }
            | TraceEvent::FaultFailed { at, .. }
            | TraceEvent::Mark { at, .. } => *at,
            TraceEvent::ResourceSpan { start, .. }
            | TraceEvent::NandOp { start, .. }
            | TraceEvent::ChannelTransfer { start, .. }
            | TraceEvent::PatternScan { start, .. } => *start,
        }
    }
}

#[derive(Debug)]
struct RingBuf {
    events: Vec<TraceEvent>,
    capacity: usize,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    dropped: u64,
}

impl RingBuf {
    fn new(capacity: usize) -> Self {
        RingBuf {
            events: Vec::new(),
            capacity,
            head: 0,
            dropped: 0,
        }
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.events.len() < self.capacity {
            self.events.push(ev);
        } else {
            self.events[self.head] = ev;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }

    fn chronological(&self) -> Vec<TraceEvent> {
        let mut out = Vec::with_capacity(self.events.len());
        out.extend_from_slice(&self.events[self.head..]);
        out.extend_from_slice(&self.events[..self.head]);
        out
    }
}

#[derive(Debug)]
struct TracerInner {
    enabled: AtomicBool,
    buf: Mutex<RingBuf>,
}

/// A cheaply cloneable handle to a simulation's event buffer.
///
/// Every [`crate::Simulation`] owns one (disabled by default); library code
/// shares it by clone. Instrumentation sites call [`Tracer::emit`] with a
/// closure, so a disabled tracer costs one relaxed atomic load and nothing
/// else.
#[derive(Debug, Clone)]
pub struct Tracer {
    inner: Arc<TracerInner>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

impl Tracer {
    /// Creates a disabled tracer with the default capacity.
    pub fn new() -> Self {
        Tracer {
            inner: Arc::new(TracerInner {
                enabled: AtomicBool::new(false),
                buf: Mutex::new(RingBuf::new(TraceConfig::default().capacity)),
            }),
        }
    }

    /// Enables recording, resetting the buffer to `cfg.capacity`.
    pub fn enable(&self, cfg: TraceConfig) {
        assert!(cfg.capacity > 0, "trace capacity must be positive");
        *self.inner.buf.lock() = RingBuf::new(cfg.capacity);
        self.inner.enabled.store(true, Ordering::Release);
    }

    /// Stops recording (already-buffered events are kept).
    pub fn disable(&self) {
        self.inner.enabled.store(false, Ordering::Release);
    }

    /// True while the tracer records events.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.enabled.load(Ordering::Relaxed)
    }

    /// Records the event produced by `f`, if enabled. The closure is not
    /// called when tracing is off — this is the cheap hot-path entry point.
    #[inline]
    pub fn emit<F: FnOnce() -> TraceEvent>(&self, f: F) {
        if self.is_enabled() {
            self.record(f());
        }
    }

    /// Unconditionally records an already-constructed event (still a no-op
    /// while disabled).
    pub fn record(&self, ev: TraceEvent) {
        if self.is_enabled() {
            self.inner.buf.lock().push(ev);
        }
    }

    /// Snapshots the buffered events in chronological (insertion) order.
    pub fn snapshot(&self) -> Trace {
        let buf = self.inner.buf.lock();
        Trace {
            events: buf.chronological(),
            dropped: buf.dropped,
        }
    }
}

/// A captured, immutable sequence of [`TraceEvent`]s.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    events: Vec<TraceEvent>,
    dropped: u64,
}

impl Trace {
    /// The recorded events in insertion order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events lost to ring-buffer overflow.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Exports the Chrome `trace_event` JSON format (the object form, with
    /// a `traceEvents` array), loadable in `chrome://tracing` and Perfetto.
    ///
    /// Layout: process 1 holds one thread per fiber (run slices between
    /// resume and block), process 2 holds one thread per device resource
    /// track (NAND dies, channel buses, pattern matchers, CPU cores, link
    /// directions), and process 3 holds queue-depth counters plus port and
    /// planner instants. Timestamps are microseconds with exactly six
    /// fractional digits derived from the integer picosecond clock, and
    /// entries are stable-sorted by start time, so the output is both
    /// monotonic and byte-deterministic for a given event sequence.
    pub fn to_chrome_json(&self) -> String {
        ChromeExporter::new(self).export()
    }

    /// [`Trace::to_chrome_json`] plus query *flow events*: each profiled
    /// query contributes one envelope slice on a dedicated "queries"
    /// process and a flow arrow chain (`s`/`t`/`f` events keyed by query
    /// id) stepping through its critical-path segments on the existing
    /// device tracks (`nand.chN`, `bus.chN`, `pm.chN`, `cpu.core.N`, link
    /// directions). Segments whose track the trace never recorded fall
    /// back to the query's own slice, so the chain always renders.
    pub fn to_chrome_json_with_flows(&self, profiles: &QueryProfiles) -> String {
        let mut exporter = ChromeExporter::new(self);
        exporter.flows = Some(profiles);
        exporter.export()
    }

    /// Writes [`Trace::to_chrome_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error.
    pub fn write_chrome_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.to_chrome_json())
    }

    /// Aggregates the events into a flat metrics summary.
    pub fn metrics(&self) -> TraceMetrics {
        TraceMetrics::from_trace(self)
    }
}

// ---------------------------------------------------------------------------
// Chrome trace_event export
// ---------------------------------------------------------------------------

const PID_FIBERS: u32 = 1;
const PID_DEVICE: u32 = 2;
const PID_FLOW: u32 = 3;
const PID_QUERIES: u32 = 4;

/// Escapes `s` as the contents of a JSON string (without the quotes).
pub(crate) fn escape_json_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_json_into(&mut out, s);
    out.push('"');
    out
}

/// Renders picoseconds as microseconds with six fixed fractional digits —
/// exact and byte-deterministic (no float formatting involved).
pub(crate) fn ts_us(ps: u64) -> String {
    format!("{}.{:06}", ps / 1_000_000, ps % 1_000_000)
}

struct ChromeExporter<'a> {
    trace: &'a Trace,
    /// Data entries: (sort timestamp in ps, rendered JSON object).
    entries: Vec<(u64, String)>,
    fiber_names: BTreeMap<Pid, Arc<str>>,
    device_tids: BTreeMap<String, u32>,
    flow_tids: BTreeMap<String, u32>,
    /// Query profiles to stitch in as flow events, if any.
    flows: Option<&'a QueryProfiles>,
}

impl<'a> ChromeExporter<'a> {
    fn new(trace: &'a Trace) -> Self {
        ChromeExporter {
            trace,
            entries: Vec::with_capacity(trace.len()),
            fiber_names: BTreeMap::new(),
            device_tids: BTreeMap::new(),
            flow_tids: BTreeMap::new(),
            flows: None,
        }
    }

    fn device_tid(&mut self, key: String) -> u32 {
        let next = self.device_tids.len() as u32;
        *self.device_tids.entry(key).or_insert(next)
    }

    fn flow_tid(&mut self, key: String) -> u32 {
        let next = self.flow_tids.len() as u32 + 1;
        *self.flow_tids.entry(key).or_insert(next)
    }

    fn push(&mut self, sort_ps: u64, entry: String) {
        self.entries.push((sort_ps, entry));
    }

    fn complete(
        &mut self,
        name: &str,
        cat: &str,
        pid: u32,
        tid: u32,
        start: SimTime,
        end: SimTime,
        args: &str,
    ) {
        let start_ps = start.as_ps();
        let dur_ps = end.as_ps().saturating_sub(start_ps);
        let entry = format!(
            r#"{{"name":{},"cat":{},"ph":"X","ts":{},"dur":{},"pid":{},"tid":{},"args":{{{}}}}}"#,
            json_str(name),
            json_str(cat),
            ts_us(start_ps),
            ts_us(dur_ps),
            pid,
            tid,
            args
        );
        self.push(start_ps, entry);
    }

    fn instant(&mut self, name: &str, cat: &str, pid: u32, tid: u32, at: SimTime, args: &str) {
        let ps = at.as_ps();
        let entry = format!(
            r#"{{"name":{},"cat":{},"ph":"i","s":"t","ts":{},"pid":{},"tid":{},"args":{{{}}}}}"#,
            json_str(name),
            json_str(cat),
            ts_us(ps),
            pid,
            tid,
            args
        );
        self.push(ps, entry);
    }

    fn counter(&mut self, name: &str, at: SimTime, value: usize) {
        let ps = at.as_ps();
        let entry = format!(
            r#"{{"name":{},"cat":"queue","ph":"C","ts":{},"pid":{},"tid":0,"args":{{"depth":{}}}}}"#,
            json_str(name),
            ts_us(ps),
            PID_FLOW,
            value
        );
        self.push(ps, entry);
    }

    fn export(mut self) -> String {
        // First pass: learn fiber names so run slices carry them even when
        // the resume precedes a late name lookup.
        for ev in &self.trace.events {
            if let TraceEvent::FiberSpawn { pid, name, .. } = ev {
                self.fiber_names.insert(*pid, Arc::clone(name));
            }
        }
        let mut running: BTreeMap<Pid, SimTime> = BTreeMap::new();
        let events: &[TraceEvent] = &self.trace.events;
        for ev in events {
            match ev {
                TraceEvent::FiberSpawn { at, pid, name } => {
                    let args = format!(r#""name":{}"#, json_str(name));
                    self.instant("spawn", "fiber", PID_FIBERS, *pid as u32, *at, &args);
                }
                TraceEvent::FiberResume { at, pid } => {
                    running.insert(*pid, *at);
                }
                TraceEvent::FiberBlock { at, pid } | TraceEvent::FiberFinish { at, pid } => {
                    if let Some(start) = running.remove(pid) {
                        let name = self
                            .fiber_names
                            .get(pid)
                            .cloned()
                            .unwrap_or_else(|| Arc::from(format!("fiber{pid}")));
                        let finished = matches!(ev, TraceEvent::FiberFinish { .. });
                        let args = format!(r#""finished":{finished}"#);
                        self.complete(&name, "fiber", PID_FIBERS, *pid as u32, start, *at, &args);
                    }
                }
                TraceEvent::QueuePush { at, queue, depth } => {
                    self.counter(queue, *at, *depth);
                }
                TraceEvent::QueuePop { at, queue, depth } => {
                    self.counter(queue, *at, *depth);
                }
                TraceEvent::ResourceSpan {
                    resource,
                    server,
                    start,
                    end,
                    bytes,
                } => {
                    let key = match server {
                        Some(idx) => format!("{resource}.{idx}"),
                        None => resource.to_string(),
                    };
                    let tid = self.device_tid(key);
                    let args = format!(r#""bytes":{bytes}"#);
                    self.complete("busy", "resource", PID_DEVICE, tid, *start, *end, &args);
                }
                TraceEvent::NandOp {
                    kind,
                    channel,
                    way,
                    start,
                    end,
                } => {
                    let tid = self.device_tid(format!("nand.ch{channel}"));
                    let args = format!(r#""way":{way}"#);
                    self.complete(kind.as_str(), "nand", PID_DEVICE, tid, *start, *end, &args);
                }
                TraceEvent::ChannelTransfer {
                    channel,
                    start,
                    end,
                    bytes,
                } => {
                    let tid = self.device_tid(format!("bus.ch{channel}"));
                    let args = format!(r#""bytes":{bytes}"#);
                    self.complete("xfer", "bus", PID_DEVICE, tid, *start, *end, &args);
                }
                TraceEvent::PatternScan {
                    channel,
                    start,
                    end,
                    bytes,
                    matched,
                } => {
                    let tid = self.device_tid(format!("pm.ch{channel}"));
                    let args = format!(r#""bytes":{bytes},"matched":{matched}"#);
                    self.complete("scan", "pattern", PID_DEVICE, tid, *start, *end, &args);
                }
                TraceEvent::PortSend {
                    at,
                    port,
                    kind,
                    bytes,
                } => {
                    let tid = self.flow_tid(port.to_string());
                    let args = format!(r#""kind":{},"bytes":{bytes}"#, json_str(kind));
                    self.instant("send", "port", PID_FLOW, tid, *at, &args);
                }
                TraceEvent::PortRecv {
                    at,
                    port,
                    kind,
                    bytes,
                } => {
                    let tid = self.flow_tid(port.to_string());
                    let args = format!(r#""kind":{},"bytes":{bytes}"#, json_str(kind));
                    self.instant("recv", "port", PID_FLOW, tid, *at, &args);
                }
                TraceEvent::OffloadVerdict {
                    at,
                    table,
                    offloaded,
                    est_selectivity,
                    reason,
                } => {
                    let tid = self.flow_tid("planner".to_string());
                    let name = if *offloaded { "offload" } else { "host-scan" };
                    let args = format!(
                        r#""table":{},"selectivity":{est_selectivity},"reason":{}"#,
                        json_str(table),
                        json_str(reason)
                    );
                    self.instant(name, "planner", PID_FLOW, tid, *at, &args);
                }
                TraceEvent::FaultInjected { at, site, detail } => {
                    let tid = self.flow_tid("faults".to_string());
                    let args =
                        format!(r#""site":{},"detail":{}"#, json_str(site), json_str(detail));
                    self.instant("inject", "fault", PID_FLOW, tid, *at, &args);
                }
                TraceEvent::FaultRecovered { at, site, action } => {
                    let tid = self.flow_tid("faults".to_string());
                    let args =
                        format!(r#""site":{},"action":{}"#, json_str(site), json_str(action));
                    self.instant("recover", "fault", PID_FLOW, tid, *at, &args);
                }
                TraceEvent::FaultFailed { at, site, action } => {
                    let tid = self.flow_tid("faults".to_string());
                    let args =
                        format!(r#""site":{},"action":{}"#, json_str(site), json_str(action));
                    self.instant("fail", "fault", PID_FLOW, tid, *at, &args);
                }
                TraceEvent::Mark { at, name, detail } => {
                    let tid = self.flow_tid("marks".to_string());
                    let args = format!(r#""detail":{}"#, json_str(detail));
                    self.instant(name, "mark", PID_FLOW, tid, *at, &args);
                }
            }
        }

        // Query flow events go in after the event loop so every device
        // track the trace will ever name is already numbered.
        let flow_entries = self
            .flows
            .map(|p| p.flow_entries(&self.device_tids, PID_DEVICE, PID_QUERIES));
        if let Some(entries) = flow_entries {
            for (ps, entry) in entries {
                self.push(ps, entry);
            }
        }

        // Stable sort: entries recorded in deterministic order keep that
        // order within a timestamp, and reservation spans with future end
        // times still start monotonically.
        self.entries.sort_by_key(|&(ps, _)| ps);

        let mut meta: Vec<String> = Vec::new();
        if !self.entries.is_empty() {
            let has_queries = self.flows.is_some_and(|p| !p.queries().is_empty());
            for (pid, name) in [
                (PID_FIBERS, "fibers"),
                (PID_DEVICE, "device"),
                (PID_FLOW, "queues & ports"),
            ]
            .into_iter()
            .chain(has_queries.then_some((PID_QUERIES, "queries")))
            {
                meta.push(format!(
                    r#"{{"name":"process_name","ph":"M","ts":0.000000,"pid":{},"tid":0,"args":{{"name":{}}}}}"#,
                    pid,
                    json_str(name)
                ));
            }
            for (pid, name) in &self.fiber_names {
                meta.push(format!(
                    r#"{{"name":"thread_name","ph":"M","ts":0.000000,"pid":{},"tid":{},"args":{{"name":{}}}}}"#,
                    PID_FIBERS,
                    *pid as u32,
                    json_str(name)
                ));
            }
            let mut tracks: Vec<(&String, &u32, u32)> = self
                .device_tids
                .iter()
                .map(|(k, v)| (k, v, PID_DEVICE))
                .chain(self.flow_tids.iter().map(|(k, v)| (k, v, PID_FLOW)))
                .collect();
            tracks.sort_by_key(|&(_, tid, pid)| (pid, *tid));
            for (key, tid, pid) in tracks {
                meta.push(format!(
                    r#"{{"name":"thread_name","ph":"M","ts":0.000000,"pid":{},"tid":{},"args":{{"name":{}}}}}"#,
                    pid,
                    tid,
                    json_str(key)
                ));
            }
        }

        let mut out = String::from(r#"{"traceEvents":["#);
        let mut first = true;
        for entry in meta.iter().chain(self.entries.iter().map(|(_, e)| e)) {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(entry);
        }
        out.push(']');
        // Surface truncation: a ring-buffer overflow silently loses the
        // oldest events, so a nonzero count must be visible in the export.
        if self.trace.dropped > 0 {
            out.push_str(&format!(r#","dropped":{}"#, self.trace.dropped));
        }
        out.push_str(r#","displayTimeUnit":"ms"}"#);
        out
    }
}

// ---------------------------------------------------------------------------
// Flat metrics summary
// ---------------------------------------------------------------------------

/// Busy-time accounting for one span track (a resource, NAND channel, bus,
/// or pattern matcher).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TrackMetrics {
    /// Total service time accumulated on the track.
    pub busy: SimDuration,
    /// Operations served.
    pub ops: u64,
    /// Bytes moved (zero for pure time charges).
    pub bytes: u64,
}

impl TrackMetrics {
    /// Busy fraction of `span` (clamped to 1.0; parallel servers folded
    /// into one track can exceed their span).
    pub fn utilization(&self, span: SimDuration) -> f64 {
        if span.is_zero() {
            return 0.0;
        }
        (self.busy.as_ps() as f64 / span.as_ps() as f64).min(1.0)
    }
}

/// Push/pop accounting for one traced queue.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QueueMetrics {
    /// Items pushed.
    pub pushes: u64,
    /// Items popped.
    pub pops: u64,
    /// High-water mark of buffered items.
    pub max_depth: usize,
}

/// Send/receive accounting for one traced port connection.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PortMetrics {
    /// Messages sent.
    pub sends: u64,
    /// Messages received.
    pub recvs: u64,
    /// Encoded bytes sent (boundary ports; zero for native typed ports).
    pub bytes: u64,
}

/// One planner decision, as recorded.
#[derive(Debug, Clone, PartialEq)]
pub struct OffloadSummary {
    /// Table name.
    pub table: String,
    /// Whether the scan was offloaded.
    pub offloaded: bool,
    /// Sampled selectivity.
    pub est_selectivity: f64,
    /// Planner reason string.
    pub reason: &'static str,
}

/// Flat aggregation of a [`Trace`]: where time and bytes went.
#[derive(Debug, Clone, Default)]
pub struct TraceMetrics {
    /// Latest timestamp observed in the trace (the metric horizon).
    pub end_time: SimTime,
    /// Fibers spawned.
    pub fibers_spawned: u64,
    /// Scheduler resume count (context switches). Fiber run slices have
    /// zero *virtual* duration by construction — the kernel's clock is
    /// frozen while model code executes, and all modeled time is charged
    /// through sleeps and resource reservations — so there is no "fiber
    /// busy time" metric; the span tracks hold where virtual time went.
    pub context_switches: u64,
    /// Span tracks keyed as in the Chrome export (`nand.ch0`, `bus.ch0`,
    /// `pm.ch0`, `cpu.core.0`, `link.to_host`, ...).
    pub tracks: BTreeMap<String, TrackMetrics>,
    /// Traced queues by label.
    pub queues: BTreeMap<String, QueueMetrics>,
    /// Traced ports by label.
    pub ports: BTreeMap<String, PortMetrics>,
    /// Planner verdicts in decision order.
    pub offloads: Vec<OffloadSummary>,
    /// Faults injected (by site label).
    pub faults_injected: BTreeMap<&'static str, u64>,
    /// Faults recovered (by site label).
    pub faults_recovered: BTreeMap<&'static str, u64>,
    /// Recovery failures (by site label).
    pub faults_failed: BTreeMap<&'static str, u64>,
    /// Events lost to ring-buffer overflow.
    pub dropped: u64,
}

impl TraceMetrics {
    fn from_trace(trace: &Trace) -> TraceMetrics {
        let mut m = TraceMetrics {
            dropped: trace.dropped,
            ..TraceMetrics::default()
        };
        let mut depths: BTreeMap<Arc<str>, usize> = BTreeMap::new();
        for ev in &trace.events {
            m.end_time = m.end_time.max(ev.timestamp());
            match ev {
                TraceEvent::FiberSpawn { .. } => m.fibers_spawned += 1,
                TraceEvent::FiberResume { .. } => m.context_switches += 1,
                TraceEvent::FiberBlock { .. } | TraceEvent::FiberFinish { .. } => {}
                TraceEvent::QueuePush { queue, depth, .. } => {
                    let q = m.queues.entry(queue.to_string()).or_default();
                    q.pushes += 1;
                    q.max_depth = q.max_depth.max(*depth);
                    depths.insert(Arc::clone(queue), *depth);
                }
                TraceEvent::QueuePop { queue, depth, .. } => {
                    let q = m.queues.entry(queue.to_string()).or_default();
                    q.pops += 1;
                    depths.insert(Arc::clone(queue), *depth);
                }
                TraceEvent::ResourceSpan {
                    resource,
                    server,
                    start,
                    end,
                    bytes,
                } => {
                    let key = match server {
                        Some(idx) => format!("{resource}.{idx}"),
                        None => resource.to_string(),
                    };
                    m.end_time = m.end_time.max(*end);
                    let t = m.tracks.entry(key).or_default();
                    t.busy += *end - *start;
                    t.ops += 1;
                    t.bytes += bytes;
                }
                TraceEvent::NandOp {
                    channel,
                    start,
                    end,
                    ..
                } => {
                    m.end_time = m.end_time.max(*end);
                    let t = m.tracks.entry(format!("nand.ch{channel}")).or_default();
                    t.busy += *end - *start;
                    t.ops += 1;
                }
                TraceEvent::ChannelTransfer {
                    channel,
                    start,
                    end,
                    bytes,
                } => {
                    m.end_time = m.end_time.max(*end);
                    let t = m.tracks.entry(format!("bus.ch{channel}")).or_default();
                    t.busy += *end - *start;
                    t.ops += 1;
                    t.bytes += bytes;
                }
                TraceEvent::PatternScan {
                    channel,
                    start,
                    end,
                    bytes,
                    ..
                } => {
                    m.end_time = m.end_time.max(*end);
                    let t = m.tracks.entry(format!("pm.ch{channel}")).or_default();
                    t.busy += *end - *start;
                    t.ops += 1;
                    t.bytes += bytes;
                }
                TraceEvent::PortSend { port, bytes, .. } => {
                    let p = m.ports.entry(port.to_string()).or_default();
                    p.sends += 1;
                    p.bytes += bytes;
                }
                TraceEvent::PortRecv { port, .. } => {
                    m.ports.entry(port.to_string()).or_default().recvs += 1;
                }
                TraceEvent::OffloadVerdict {
                    table,
                    offloaded,
                    est_selectivity,
                    reason,
                    ..
                } => {
                    m.offloads.push(OffloadSummary {
                        table: table.to_string(),
                        offloaded: *offloaded,
                        est_selectivity: *est_selectivity,
                        reason,
                    });
                }
                TraceEvent::FaultInjected { site, .. } => {
                    *m.faults_injected.entry(site).or_default() += 1;
                }
                TraceEvent::FaultRecovered { site, .. } => {
                    *m.faults_recovered.entry(site).or_default() += 1;
                }
                TraceEvent::FaultFailed { site, .. } => {
                    *m.faults_failed.entry(site).or_default() += 1;
                }
                TraceEvent::Mark { .. } => {}
            }
        }
        m
    }

    /// The metric horizon as a duration since the epoch.
    pub fn span(&self) -> SimDuration {
        self.end_time - SimTime::ZERO
    }
}

impl fmt::Display for TraceMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "trace metrics (horizon {}):", self.end_time)?;
        writeln!(
            f,
            "  fibers: {} spawned, {} context switches",
            self.fibers_spawned, self.context_switches
        )?;
        let span = self.span();
        for (key, t) in &self.tracks {
            writeln!(
                f,
                "  track {key}: busy {} ({:.1}%), {} ops, {} bytes",
                t.busy,
                t.utilization(span) * 100.0,
                t.ops,
                t.bytes
            )?;
        }
        for (key, q) in &self.queues {
            writeln!(
                f,
                "  queue {key}: {} pushed, {} popped, max depth {}",
                q.pushes, q.pops, q.max_depth
            )?;
        }
        for (key, p) in &self.ports {
            writeln!(
                f,
                "  port {key}: {} sent, {} received, {} bytes",
                p.sends, p.recvs, p.bytes
            )?;
        }
        for (site, n) in &self.faults_injected {
            let recovered = self.faults_recovered.get(site).copied().unwrap_or(0);
            let failed = self.faults_failed.get(site).copied().unwrap_or(0);
            writeln!(
                f,
                "  faults {site}: {n} injected, {recovered} recovered, {failed} failed"
            )?;
        }
        for o in &self.offloads {
            writeln!(
                f,
                "  planner {}: {} (selectivity {:.4}, {})",
                o.table,
                if o.offloaded { "OFFLOAD" } else { "host scan" },
                o.est_selectivity,
                o.reason
            )?;
        }
        if self.dropped > 0 {
            writeln!(f, "  dropped events: {}", self.dropped)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::SimQueue;
    use crate::resource::{ServerBank, Shaper};
    use crate::Simulation;

    /// Minimal structural JSON validator: balanced braces/brackets outside
    /// strings, valid escape sequences inside them.
    fn assert_valid_json(s: &str) {
        let mut stack = Vec::new();
        let mut chars = s.chars();
        let mut in_string = false;
        while let Some(c) = chars.next() {
            if in_string {
                match c {
                    '\\' => {
                        let esc = chars.next().expect("dangling escape");
                        match esc {
                            '"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't' => {}
                            'u' => {
                                for _ in 0..4 {
                                    let h = chars.next().expect("short \\u escape");
                                    assert!(h.is_ascii_hexdigit(), "bad \\u digit {h:?}");
                                }
                            }
                            other => panic!("invalid escape \\{other}"),
                        }
                    }
                    '"' => in_string = false,
                    c => assert!((c as u32) >= 0x20, "raw control char in string"),
                }
            } else {
                match c {
                    '"' => in_string = true,
                    '{' => stack.push('}'),
                    '[' => stack.push(']'),
                    '}' | ']' => assert_eq!(stack.pop(), Some(c), "mismatched bracket"),
                    _ => {}
                }
            }
        }
        assert!(!in_string, "unterminated string");
        assert!(stack.is_empty(), "unbalanced brackets");
    }

    fn ts_values(json: &str) -> Vec<f64> {
        json.match_indices(r#""ts":"#)
            .map(|(i, _)| {
                let rest = &json[i + 5..];
                let end = rest
                    .find(|c: char| !(c.is_ascii_digit() || c == '.'))
                    .unwrap();
                rest[..end].parse::<f64>().unwrap()
            })
            .collect()
    }

    #[test]
    fn empty_trace_exports_valid_json() {
        let t = Trace::default();
        let json = t.to_chrome_json();
        assert_eq!(json, r#"{"traceEvents":[],"displayTimeUnit":"ms"}"#);
        assert_valid_json(&json);
        assert!(t.is_empty());
        assert_eq!(t.metrics().fibers_spawned, 0);
    }

    #[test]
    fn json_escaping_covers_specials() {
        let mut out = String::new();
        escape_json_into(&mut out, "a\"b\\c\nd\te\u{1}f — µs");
        assert_eq!(out, "a\\\"b\\\\c\\nd\\te\\u0001f — µs");
        // And through a full event round trip.
        let tracer = Tracer::new();
        tracer.enable(TraceConfig::default());
        tracer.record(TraceEvent::Mark {
            at: SimTime::from_us(1),
            name: Arc::from("weird \"name\"\n"),
            detail: Arc::from("tab\there\\"),
        });
        let json = tracer.snapshot().to_chrome_json();
        assert_valid_json(&json);
        assert!(json.contains(r#"weird \"name\"\n"#));
        assert!(json.contains(r#"tab\there\\"#));
    }

    #[test]
    fn ring_buffer_drops_oldest() {
        let tracer = Tracer::new();
        tracer.enable(TraceConfig::with_capacity(4));
        for i in 0..10u64 {
            tracer.record(TraceEvent::Mark {
                at: SimTime::from_us(i),
                name: Arc::from(format!("m{i}")),
                detail: Arc::from(""),
            });
        }
        let t = tracer.snapshot();
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 6);
        let times: Vec<u64> = t
            .events()
            .iter()
            .map(|e| e.timestamp().as_micros())
            .collect();
        assert_eq!(times, vec![6, 7, 8, 9], "oldest events dropped first");
    }

    #[test]
    fn disabled_tracer_skips_closure() {
        let tracer = Tracer::new();
        let mut called = false;
        tracer.emit(|| {
            called = true;
            TraceEvent::Mark {
                at: SimTime::ZERO,
                name: Arc::from("x"),
                detail: Arc::from(""),
            }
        });
        assert!(!called, "closure must not run while disabled");
        assert!(tracer.snapshot().is_empty());
    }

    #[test]
    fn simulation_trace_captures_fibers_and_is_monotonic() {
        let sim = Simulation::new(0);
        sim.enable_trace(TraceConfig::default());
        let q = SimQueue::new(4);
        q.set_trace(sim.tracer().clone(), "test.queue");
        let tx = q.clone();
        sim.spawn("producer", move |ctx| {
            for i in 0..5u32 {
                ctx.sleep(SimDuration::from_micros(3));
                tx.push(ctx, i).unwrap();
            }
            tx.close(ctx);
        });
        sim.spawn("consumer", move |ctx| while q.pop(ctx).is_some() {});
        let report = sim.run();
        report.assert_quiescent();

        let m = report.trace.metrics();
        assert_eq!(m.fibers_spawned, 2);
        assert!(m.context_switches >= 2);
        let qm = &m.queues["test.queue"];
        assert_eq!(qm.pushes, 5);
        assert_eq!(qm.pops, 5);

        let json = report.trace.to_chrome_json();
        assert_valid_json(&json);
        assert!(json.contains(r#""name":"producer""#));
        assert!(json.contains(r#""ph":"C""#), "queue depth counters present");
        let ts = ts_values(&json);
        // Skip the metadata header (ts 0); data entries are sorted.
        assert!(
            ts.windows(2).all(|w| w[0] <= w[1]),
            "timestamps must be monotonically non-decreasing"
        );
    }

    #[test]
    fn traced_resources_produce_spans_and_utilization() {
        let sim = Simulation::new(0);
        sim.enable_trace(TraceConfig::default());
        let shaper = Arc::new(Shaper::new(1e6, SimDuration::ZERO)); // 1 MB/s
        shaper.set_trace(sim.tracer().clone(), "test.link");
        let bank = Arc::new(ServerBank::new(2));
        bank.set_trace(sim.tracer().clone(), "test.core");
        let s = Arc::clone(&shaper);
        let b = Arc::clone(&bank);
        sim.spawn("w", move |ctx| {
            s.transfer(ctx, 1000); // 1 ms
            b.serve(ctx, 1, SimDuration::from_micros(250));
        });
        let report = sim.run();
        report.assert_quiescent();
        let m = report.trace.metrics();
        let link = &m.tracks["test.link"];
        assert_eq!(link.ops, 1);
        assert_eq!(link.bytes, 1000);
        assert_eq!(link.busy.as_micros(), 1000);
        let core = &m.tracks["test.core.1"];
        assert_eq!(core.busy.as_micros(), 250);
        // Shaper busy 1000us of a 1250us horizon = 80%.
        assert!((link.utilization(m.span()) - 0.8).abs() < 1e-9);
        let json = report.trace.to_chrome_json();
        assert_valid_json(&json);
        assert!(json.contains(r#""ph":"X""#));
        assert!(json.contains("test.core.1"));
    }

    #[test]
    fn identical_event_sequences_export_identically() {
        fn run() -> String {
            let sim = Simulation::new(9);
            sim.enable_trace(TraceConfig::default());
            for i in 0..3u64 {
                sim.spawn(format!("f{i}"), move |ctx| {
                    ctx.sleep(SimDuration::from_micros(10 * (i + 1)));
                });
            }
            sim.run().trace.to_chrome_json()
        }
        assert_eq!(run(), run());
    }

    #[test]
    fn fixed_decimal_timestamps_are_exact() {
        assert_eq!(ts_us(0), "0.000000");
        assert_eq!(ts_us(1), "0.000001");
        assert_eq!(ts_us(1_000_000), "1.000000");
        assert_eq!(ts_us(90_123_456), "90.123456");
    }
}
