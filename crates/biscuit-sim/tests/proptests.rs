//! Property-based tests for the simulation kernel's core invariants.

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;

use biscuit_sim::queue::SimQueue;
use biscuit_sim::time::SimDuration;
use biscuit_sim::Simulation;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Items pushed by one producer arrive at one consumer complete and in
    /// order, for any capacity, payload set, and random per-item delays.
    #[test]
    fn spsc_fifo_no_loss(
        cap in 1usize..16,
        items in proptest::collection::vec(any::<u32>(), 0..200),
        prod_delay_us in 0u64..20,
        cons_delay_us in 0u64..20,
    ) {
        let sim = Simulation::new(0);
        let q = SimQueue::new(cap);
        let expected = items.clone();
        let tx = q.clone();
        sim.spawn("producer", move |ctx| {
            for v in items {
                ctx.sleep(SimDuration::from_micros(prod_delay_us));
                tx.push(ctx, v).unwrap();
            }
            tx.close(ctx);
        });
        let out = Arc::new(Mutex::new(Vec::new()));
        let o = Arc::clone(&out);
        sim.spawn("consumer", move |ctx| {
            while let Some(v) = q.pop(ctx) {
                o.lock().push(v);
                ctx.sleep(SimDuration::from_micros(cons_delay_us));
            }
        });
        sim.run().assert_quiescent();
        prop_assert_eq!(&*out.lock(), &expected);
    }

    /// With multiple producers and consumers, the multiset of received items
    /// equals the multiset of sent items (exactly-once delivery).
    #[test]
    fn mpmc_exactly_once(
        cap in 1usize..8,
        n_producers in 1usize..4,
        n_consumers in 1usize..4,
        per_producer in 0usize..50,
    ) {
        let sim = Simulation::new(1);
        let q = SimQueue::new(cap);
        let done = Arc::new(Mutex::new(0usize));
        for p in 0..n_producers {
            let tx = q.clone();
            let done = Arc::clone(&done);
            let closer = q.clone();
            sim.spawn(format!("p{p}"), move |ctx| {
                for i in 0..per_producer {
                    tx.push(ctx, (p * 1000 + i) as u32).unwrap();
                    ctx.sleep(SimDuration::from_micros((p as u64 % 3) + 1));
                }
                let mut d = done.lock();
                *d += 1;
                let all_done = *d == n_producers;
                drop(d);
                if all_done {
                    closer.close(ctx);
                }
            });
        }
        let seen = Arc::new(Mutex::new(Vec::new()));
        for c in 0..n_consumers {
            let rx = q.clone();
            let seen = Arc::clone(&seen);
            sim.spawn(format!("c{c}"), move |ctx| {
                while let Some(v) = rx.pop(ctx) {
                    seen.lock().push(v);
                    ctx.sleep(SimDuration::from_micros((c as u64 % 2) + 1));
                }
            });
        }
        sim.run().assert_quiescent();
        let mut got = seen.lock().clone();
        got.sort_unstable();
        let mut expect: Vec<u32> = (0..n_producers)
            .flat_map(|p| (0..per_producer).map(move |i| (p * 1000 + i) as u32))
            .collect();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    /// Virtual time observed by any single fiber is monotonically
    /// non-decreasing across arbitrary sleeps.
    #[test]
    fn fiber_time_monotonic(delays in proptest::collection::vec(0u64..1000, 1..50)) {
        let sim = Simulation::new(2);
        let times = Arc::new(Mutex::new(Vec::new()));
        let t = Arc::clone(&times);
        sim.spawn("f", move |ctx| {
            for d in delays {
                ctx.sleep(SimDuration::from_nanos(d));
                t.lock().push(ctx.now());
            }
        });
        sim.run().assert_quiescent();
        let ts = times.lock();
        prop_assert!(ts.windows(2).all(|w| w[0] <= w[1]));
    }

    /// Identical seeds and workloads produce identical event schedules.
    #[test]
    fn determinism_across_runs(seed in any::<u64>(), n in 1usize..6) {
        fn run(seed: u64, n: usize) -> (u64, u64) {
            let sim = Simulation::new(seed);
            let q = SimQueue::new(2);
            for i in 0..n {
                let q = q.clone();
                sim.spawn(format!("w{i}"), move |ctx| {
                    let jitter = ctx.with_rng(|r| {
                        use rand::Rng;
                        r.random_range(0..100u64)
                    });
                    ctx.sleep(SimDuration::from_nanos(jitter));
                    let _ = q.try_push(ctx, i as u32);
                });
            }
            let report = sim.run();
            (report.end_time.as_ps(), report.events_processed)
        }
        prop_assert_eq!(run(seed, n), run(seed, n));
    }
}
