//! Property-based determinism tests for fused event-chain execution.
//!
//! The load-bearing contract of `biscuit_sim::fuse` (see `docs/PERF.md`):
//! with the same seed and workload, a simulation produces **byte-identical**
//! exports — Chrome trace, metrics (minus the engine's own dispatch-path
//! meters, [`biscuit_sim::fuse::VARIANT_METRICS`]), end time, and event
//! count — whether `BISCUIT_FUSE` is on or off, whether the driver runs
//! free or in PDES lookahead windows, and whether chains were de-fused by
//! builders. These properties randomize the chain shapes, stage latencies,
//! peer-fiber interleavings, and window sizes; the device-level variants
//! (faults, `BISCUIT_PAR` policies) live in `tests/fuse.rs` at the repo
//! root.

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;

use biscuit_sim::fuse::{ChainDesc, StageKind, VARIANT_METRICS};
use biscuit_sim::kernel::RunStatus;
use biscuit_sim::queue::SimQueue;
use biscuit_sim::time::{SimDuration, SimTime};
use biscuit_sim::{Simulation, TraceConfig};

/// Complete observable surface of one run.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Observed {
    end_time_ps: u64,
    events: u64,
    log: Vec<(usize, u64, u64)>,
    trace: String,
    metrics: String,
}

/// Runs `fibers` chain-executing fibers plus one queue ping-pong pair (the
/// peer wakes force hop-level de-fusion at random points), under the given
/// fuse setting and optional lookahead window.
fn run_workload(
    seed: u64,
    fibers: usize,
    passes: usize,
    stages: usize,
    defuse_mask: u32,
    fuse: bool,
    window_us: Option<u64>,
) -> Observed {
    let sim = Simulation::new(seed);
    sim.set_fuse(fuse);
    sim.enable_metrics();
    sim.enable_trace(TraceConfig::default());
    let log: Arc<Mutex<Vec<(usize, u64, u64)>>> = Arc::new(Mutex::new(Vec::new()));

    for i in 0..fibers {
        let l = Arc::clone(&log);
        sim.spawn(format!("chains{i}"), move |ctx| {
            for pass in 0..passes {
                let mut chain = ChainDesc::new();
                let mut t = ctx.now();
                for s in 0..stages {
                    let d = 1 + (seed + i as u64 * 5 + pass as u64 * 3 + s as u64) % 6;
                    let end = t + SimDuration::from_micros(d);
                    chain.push(
                        if s % 2 == 0 {
                            StageKind::NandSense
                        } else {
                            StageKind::BusTransfer
                        },
                        t,
                        end,
                    );
                    t = end;
                }
                if defuse_mask & (1 << (pass % 32)) != 0 {
                    // Builders de-fuse chains on rare paths (ECC retry);
                    // model that here and require identical observables.
                    chain.defuse();
                }
                ctx.run_chain(chain);
                l.lock().push((i, pass as u64, ctx.now().as_micros()));
            }
        });
    }

    // Queue ping-pong: wakes land between other fibers' chain hops, so
    // the fuse guard must fall back to the heap to keep dispatch order.
    let q = SimQueue::new(2);
    let tx = q.clone();
    sim.spawn("pinger", move |ctx| {
        for v in 0..(passes as u32 * 2) {
            ctx.sleep(SimDuration::from_micros(3));
            tx.push(ctx, v).unwrap();
        }
        tx.close(ctx);
    });
    let l = Arc::clone(&log);
    sim.spawn("ponger", move |ctx| {
        while let Some(v) = q.pop(ctx) {
            ctx.sleep(SimDuration::from_micros(2));
            l.lock().push((usize::MAX, v as u64, ctx.now().as_micros()));
        }
    });

    let report = match window_us {
        None => sim.run(),
        Some(w) => {
            let step = SimDuration::from_micros(w);
            let mut sim = sim;
            let mut horizon = SimTime::ZERO + step;
            loop {
                match sim.run_until(horizon) {
                    RunStatus::Drained => break sim.finish(),
                    RunStatus::Paused { next } => {
                        assert!(next > horizon, "Paused must point past the horizon");
                        horizon = horizon + step;
                    }
                    RunStatus::Panicked => unreachable!("workload does not panic"),
                }
            }
        }
    };
    report.assert_quiescent();
    let log = log.lock().clone();
    Observed {
        end_time_ps: report.end_time.as_ps(),
        events: report.events_processed,
        log,
        trace: report.trace.to_chrome_json(),
        metrics: report.metrics.without(VARIANT_METRICS).to_json(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fused and unfused runs of the same randomized workload are
    /// byte-identical on every export, free-running or windowed.
    #[test]
    fn fuse_is_observationally_invisible(
        seed in 0u64..1_000,
        fibers in 1usize..4,
        passes in 1usize..6,
        stages in 1usize..5,
        defuse_mask in any::<u32>(),
        window_us in prop::option::of(1u64..40),
    ) {
        let unfused = run_workload(seed, fibers, passes, stages, defuse_mask, false, window_us);
        let fused = run_workload(seed, fibers, passes, stages, defuse_mask, true, window_us);
        prop_assert_eq!(&fused, &unfused);
    }

    /// Window size is a memory bound, not a behavior knob: under fusion,
    /// every window size matches the free-running run byte for byte.
    #[test]
    fn fused_windows_never_change_artifacts(
        seed in 0u64..1_000,
        passes in 1usize..6,
        stages in 1usize..5,
        window_us in 1u64..40,
    ) {
        let free = run_workload(seed, 2, passes, stages, 0, true, None);
        let windowed = run_workload(seed, 2, passes, stages, 0, true, Some(window_us));
        prop_assert_eq!(&windowed, &free);
    }
}
