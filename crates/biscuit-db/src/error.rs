//! Database error types.

use biscuit_core::BiscuitError;
use biscuit_fs::FsError;

/// Errors surfaced by the mini DB engine.
#[derive(Debug)]
pub enum DbError {
    /// A table with this name already exists.
    TableExists(String),
    /// No table with this name.
    UnknownTable(String),
    /// No column with this name.
    UnknownColumn(String),
    /// A row failed to parse from its on-flash text form.
    CorruptRow {
        /// Table involved.
        table: String,
        /// Offending line.
        line: String,
    },
    /// An expression was applied to incompatible values.
    TypeError(String),
    /// A row did not fit in one page.
    RowTooLarge {
        /// Serialized size.
        bytes: usize,
        /// Page size.
        page_size: usize,
    },
    /// Filesystem failure.
    Fs(FsError),
    /// Framework failure during offload.
    Biscuit(BiscuitError),
    /// The query shape is not supported by this executor (e.g. joins on
    /// the sharded [`ArrayDb`](crate::array::ArrayDb)).
    Unsupported(String),
}

impl std::fmt::Display for DbError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DbError::TableExists(t) => write!(f, "table already exists: {t}"),
            DbError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            DbError::UnknownColumn(c) => write!(f, "unknown column: {c}"),
            DbError::CorruptRow { table, line } => {
                write!(f, "corrupt row in table {table}: {line:?}")
            }
            DbError::TypeError(msg) => write!(f, "type error: {msg}"),
            DbError::RowTooLarge { bytes, page_size } => {
                write!(f, "row of {bytes} bytes exceeds page size {page_size}")
            }
            DbError::Fs(e) => write!(f, "filesystem: {e}"),
            DbError::Biscuit(e) => write!(f, "framework: {e}"),
            DbError::Unsupported(msg) => write!(f, "unsupported query shape: {msg}"),
        }
    }
}

impl std::error::Error for DbError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DbError::Fs(e) => Some(e),
            DbError::Biscuit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<FsError> for DbError {
    fn from(e: FsError) -> Self {
        DbError::Fs(e)
    }
}

impl From<BiscuitError> for DbError {
    fn from(e: BiscuitError) -> Self {
        DbError::Biscuit(e)
    }
}

/// Result alias for DB operations.
pub type DbResult<T> = Result<T, DbError>;
