//! Scalar values, column types, and the pipe-delimited text row format.
//!
//! Rows are stored on flash in a pipe-delimited text layout close to
//! `dbgen`'s `.tbl` format, with one deliberate twist: **every row begins
//! and ends with a pipe** (`|f0|f1|...|fn|\n`). That guarantees every
//! column value — including the first and last — appears on flash as the
//! byte string `|value|`, so the hardware pattern matcher can search for
//! any column literal without false *negatives* (page-level false positives
//! are fine; they are verified on the device CPU).

use std::cmp::Ordering;
use std::fmt;

use biscuit_proto::packet::{DecodeError, PacketBuilder, PacketReader};
use biscuit_proto::wire::Wire;

/// Column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ColumnType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float (stands in for TPC-H decimals; serialized with two
    /// decimal places).
    Float,
    /// UTF-8 string (must not contain `|` or newline).
    Str,
    /// Calendar date, stored as days since 1970-01-01.
    Date,
}

/// A scalar value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// Float (finite).
    Float(f64),
    /// String.
    Str(String),
    /// Date (days since epoch).
    Date(i32),
}

impl Value {
    /// The value's column type.
    pub fn column_type(&self) -> ColumnType {
        match self {
            Value::Int(_) => ColumnType::Int,
            Value::Float(_) => ColumnType::Float,
            Value::Str(_) => ColumnType::Str,
            Value::Date(_) => ColumnType::Date,
        }
    }

    /// Constructs a date value from `YYYY-MM-DD`.
    ///
    /// # Panics
    ///
    /// Panics on malformed input (dates in this codebase are literals).
    pub fn date(s: &str) -> Value {
        Value::Date(parse_date(s).unwrap_or_else(|| panic!("bad date literal: {s}")))
    }

    /// Numeric view (ints and dates widen to f64 for arithmetic).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            Value::Date(v) => Some(f64::from(*v)),
            Value::Str(_) => None,
        }
    }

    /// Integer view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Date(v) => Some(i64::from(*v)),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Total ordering across comparable values (numeric widening between
    /// `Int`/`Float`/`Date`; strings compare lexicographically).
    pub fn compare(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Str(a), Value::Str(b)) => Some(a.cmp(b)),
            (Value::Date(a), Value::Date(b)) => Some(a.cmp(b)),
            (a, b) => {
                let (x, y) = (a.as_f64()?, b.as_f64()?);
                x.partial_cmp(&y)
            }
        }
    }

    /// The on-flash text form of this value (what the pattern matcher sees).
    pub fn to_text(&self) -> String {
        match self {
            Value::Int(v) => v.to_string(),
            Value::Float(v) => format!("{v:.2}"),
            Value::Str(s) => s.clone(),
            Value::Date(d) => format_date(*d),
        }
    }

    /// Parses the text form back, guided by the column type.
    pub fn from_text(ty: ColumnType, s: &str) -> Option<Value> {
        match ty {
            ColumnType::Int => s.parse().ok().map(Value::Int),
            ColumnType::Float => s.parse().ok().map(Value::Float),
            ColumnType::Str => Some(Value::Str(s.to_owned())),
            ColumnType::Date => parse_date(s).map(Value::Date),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_text())
    }
}

/// A row of values.
pub type Row = Vec<Value>;

/// Serializes a row in the on-flash format: `|f0|f1|...|fn|\n`.
pub fn row_to_text(row: &Row) -> String {
    let mut s = String::with_capacity(row.len() * 8 + 2);
    s.push('|');
    for v in row {
        s.push_str(&v.to_text());
        s.push('|');
    }
    s.push('\n');
    s
}

/// Parses one `|`-delimited line back into a row.
pub fn row_from_text(types: &[ColumnType], line: &str) -> Option<Row> {
    let line = line.strip_prefix('|')?.strip_suffix('|')?;
    let mut row = Vec::with_capacity(types.len());
    let mut fields = line.split('|');
    for &ty in types {
        let f = fields.next()?;
        row.push(Value::from_text(ty, f)?);
    }
    if fields.next().is_some() {
        return None; // too many fields
    }
    Some(row)
}

/// Days-since-epoch for `YYYY-MM-DD` (proleptic Gregorian, 1970 epoch).
pub fn parse_date(s: &str) -> Option<i32> {
    let mut it = s.split('-');
    let y: i32 = it.next()?.parse().ok()?;
    let m: u32 = it.next()?.parse().ok()?;
    let d: u32 = it.next()?.parse().ok()?;
    if it.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    Some(days_from_civil(y, m, d))
}

/// `YYYY-MM-DD` for a days-since-epoch value.
pub fn format_date(days: i32) -> String {
    let (y, m, d) = civil_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

// Howard Hinnant's civil-days algorithms.
fn days_from_civil(y: i32, m: u32, d: u32) -> i32 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u32;
    let mp = (m + 9) % 12;
    let doy = (153 * mp + 2) / 5 + d - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe as i32 - 719_468
}

fn civil_from_days(z: i32) -> (i32, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u32;
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe as i32 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    (if m <= 2 { y + 1 } else { y }, m, d)
}

impl Wire for Value {
    fn encode(&self, b: &mut PacketBuilder) {
        match self {
            Value::Int(v) => {
                b.put_u8(0);
                b.put_i64(*v);
            }
            Value::Float(v) => {
                b.put_u8(1);
                b.put_f64(*v);
            }
            Value::Str(s) => {
                b.put_u8(2);
                b.put_str(s);
            }
            Value::Date(d) => {
                b.put_u8(3);
                b.put_i64(i64::from(*d));
            }
        }
    }

    fn decode(r: &mut PacketReader<'_>) -> Result<Self, DecodeError> {
        match r.get_u8()? {
            0 => Ok(Value::Int(r.get_i64()?)),
            1 => Ok(Value::Float(r.get_f64()?)),
            2 => Ok(Value::Str(r.get_str()?.to_owned())),
            3 => {
                let d = r.get_i64()?;
                i32::try_from(d)
                    .map(Value::Date)
                    .map_err(|_| DecodeError::UnexpectedEnd)
            }
            t => Err(DecodeError::InvalidTag(t)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn date_round_trips() {
        for s in [
            "1970-01-01",
            "1995-01-17",
            "1998-12-01",
            "2000-02-29",
            "1992-12-31",
        ] {
            let d = parse_date(s).unwrap();
            assert_eq!(format_date(d), s, "date {s}");
        }
        assert_eq!(parse_date("1970-01-01"), Some(0));
        assert_eq!(parse_date("1970-01-02"), Some(1));
        assert_eq!(parse_date("1969-12-31"), Some(-1));
    }

    #[test]
    fn bad_dates_rejected() {
        assert_eq!(parse_date("1995-13-01"), None);
        assert_eq!(parse_date("nope"), None);
        assert_eq!(parse_date("1995-01"), None);
    }

    #[test]
    fn row_text_round_trip() {
        let row: Row = vec![
            Value::Int(42),
            Value::Str("PROMO BURNISHED".into()),
            Value::Float(1234.5),
            Value::date("1995-09-14"),
        ];
        let text = row_to_text(&row);
        assert_eq!(text, "|42|PROMO BURNISHED|1234.50|1995-09-14|\n");
        let types = [
            ColumnType::Int,
            ColumnType::Str,
            ColumnType::Float,
            ColumnType::Date,
        ];
        let back = row_from_text(&types, text.trim_end()).unwrap();
        assert_eq!(back[0], Value::Int(42));
        assert_eq!(back[1], Value::Str("PROMO BURNISHED".into()));
        assert_eq!(back[3], Value::date("1995-09-14"));
    }

    #[test]
    fn every_column_is_pipe_delimited() {
        // The property the pattern matcher relies on: `|value|` occurs for
        // every column, including first and last.
        let row: Row = vec![Value::Int(7), Value::Str("x".into()), Value::Int(9)];
        let text = row_to_text(&row);
        assert!(text.contains("|7|"));
        assert!(text.contains("|x|"));
        assert!(text.contains("|9|"));
    }

    #[test]
    fn comparisons_widen_numerics() {
        assert_eq!(
            Value::Int(3).compare(&Value::Float(3.0)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            Value::date("1995-01-17").compare(&Value::date("1995-01-18")),
            Some(Ordering::Less)
        );
        assert_eq!(Value::Str("a".into()).compare(&Value::Int(1)), None);
    }

    #[test]
    fn wire_round_trip() {
        let vals = vec![
            Value::Int(-5),
            Value::Float(2.25),
            Value::Str("hello".into()),
            Value::date("1996-03-13"),
        ];
        let p = vals.to_packet();
        assert_eq!(Vec::<Value>::from_packet(&p).unwrap(), vals);
    }

    #[test]
    fn malformed_rows_rejected() {
        let types = [ColumnType::Int, ColumnType::Int];
        assert!(row_from_text(&types, "|1|2|").is_some());
        assert!(row_from_text(&types, "|1|").is_none()); // too few
        assert!(row_from_text(&types, "|1|2|3|").is_none()); // too many
        assert!(row_from_text(&types, "1|2|").is_none()); // missing frame
        assert!(row_from_text(&types, "|a|2|").is_none()); // bad int
    }
}
