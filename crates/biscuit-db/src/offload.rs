//! The device-side scan-and-filter SSDlet — what the modified MariaDB
//! pushes down to the SSD (paper §V-C).
//!
//! The SSDlet streams the table file through the per-channel pattern
//! matcher; pages with key hits are examined on the device CPU: candidate
//! rows (the lines containing hits) are parsed and the *full* predicate is
//! verified per row, so only genuinely qualifying rows cross the link, in
//! batches, through a device-to-host port.

use biscuit_core::module::{ModuleBuilder, SsdletSpec};
use biscuit_core::task::{args_as, Ssdlet, TaskCtx};
use biscuit_core::SsdletModule;
use biscuit_fs::File;
use biscuit_ssd::pattern::{PatternLimits, PatternSet};

use crate::expr::Expr;
use crate::value::{row_from_text, ColumnType, Row};

/// Arguments handed to the scan SSDlet at instantiation.
#[derive(Debug, Clone)]
pub struct ScanArgs {
    /// The table file (read-only handle inherited from the host program).
    pub file: File,
    /// Column types for row parsing.
    pub types: Vec<ColumnType>,
    /// The full predicate, verified per candidate row on the device CPU.
    pub predicate: Expr,
    /// Pattern-matcher keys (already validated by the planner).
    pub keys: Vec<Vec<u8>>,
    /// Rows per device-to-host batch.
    pub batch_rows: usize,
    /// Pages per internal scan request.
    pub request_pages: usize,
    /// Outstanding internal scan requests.
    pub queue_depth: usize,
}

/// SSDlet identifier inside [`scan_module`].
pub const SCAN_FILTER_ID: &str = "idScanFilter";

/// SSDlet identifier of the on-device aggregator inside [`scan_module`].
pub const AGGREGATE_ID: &str = "idAggregate";

/// Arguments for the on-device aggregation SSDlet.
#[derive(Debug, Clone)]
pub struct AggArgs {
    /// Aggregate functions and their input expressions over the scanned
    /// table's rows.
    pub aggs: Vec<(crate::spec::AggFun, Expr)>,
}

/// Builds the `dbscan` module: the scan-filter SSDlet plus the on-device
/// aggregator it can feed over an inter-SSDlet port (the Fig. 3 dataflow:
/// "retrieving intermediate/final computational results only").
pub fn scan_module() -> SsdletModule {
    ModuleBuilder::new("dbscan")
        .binary_size(192 << 10)
        .register(
            SCAN_FILTER_ID,
            SsdletSpec::new().output::<Vec<Row>>().memory(1 << 20),
            |args| {
                let args = args_as::<ScanArgs>(args)?;
                Ok(Box::new(ScanFilter { args }))
            },
        )
        .register(
            AGGREGATE_ID,
            SsdletSpec::new()
                .input::<Vec<Row>>()
                .output::<Vec<Row>>()
                .memory(256 << 10),
            |args| {
                let args = args_as::<AggArgs>(args)?;
                Ok(Box::new(Aggregator { args }))
            },
        )
        .build()
}

/// Streams row batches from the scan SSDlet, folds them into aggregate
/// states on the device CPU, and emits a single result row at end of
/// stream — so only one row ever crosses the host interface.
struct Aggregator {
    args: AggArgs,
}

impl Ssdlet for Aggregator {
    fn run(&mut self, ctx: &mut TaskCtx<'_>) {
        let mut states: Vec<crate::exec::AggState> = self
            .args
            .aggs
            .iter()
            .map(|_| crate::exec::AggState::new())
            .collect();
        while let Some(batch) = ctx.recv::<Vec<Row>>(0).expect("typed input") {
            ctx.compute_bytes((batch.len() * 16 * self.args.aggs.len()) as u64);
            for row in &batch {
                for ((_, expr), st) in self.args.aggs.iter().zip(states.iter_mut()) {
                    if let Ok(v) = expr.eval(row) {
                        st.update(&v);
                    }
                }
            }
        }
        let row: Row = self
            .args
            .aggs
            .iter()
            .zip(states.iter())
            .map(|((fun, _), st)| st.finish(*fun))
            .collect();
        ctx.send(0, vec![row]).expect("host port open");
    }
}

struct ScanFilter {
    args: ScanArgs,
}

impl Ssdlet for ScanFilter {
    fn run(&mut self, ctx: &mut TaskCtx<'_>) {
        let limits = PatternLimits {
            max_keys: ctx.device().config().pm_max_keys,
            max_key_len: ctx.device().config().pm_max_key_len,
        };
        let pattern = PatternSet::new(self.args.keys.clone(), limits)
            .expect("planner validated the keys against hardware limits");
        let hits = self
            .args
            .file
            .scan(
                ctx.sim(),
                &pattern,
                self.args.request_pages,
                self.args.queue_depth,
            )
            .expect("scan of a catalog table file");
        let mut batch: Vec<Row> = Vec::with_capacity(self.args.batch_rows);
        for (_page_idx, page) in hits {
            let offsets = pattern.find_all(&page);
            let mut charged = 0u64;
            for (start, end) in candidate_lines(&page, &offsets) {
                charged += (end - start) as u64;
                let Ok(line) = std::str::from_utf8(&page[start..end]) else {
                    continue;
                };
                let trimmed = line.trim_end_matches('~');
                let Some(row) = row_from_text(&self.args.types, trimmed) else {
                    continue; // padding fragment or key hit inside padding
                };
                if self.args.predicate.eval_bool(&row).unwrap_or(false) {
                    batch.push(row);
                    if batch.len() >= self.args.batch_rows {
                        let full =
                            std::mem::replace(&mut batch, Vec::with_capacity(self.args.batch_rows));
                        ctx.send(0, full).expect("host port open while scanning");
                    }
                }
            }
            // Device CPU pays for parsing/verifying the candidate lines.
            ctx.compute_bytes(charged);
        }
        if !batch.is_empty() {
            ctx.send(0, batch).expect("host port open while scanning");
        }
    }
}

/// Line spans (start..end, exclusive of `\n`) containing any of `offsets`,
/// deduplicated and in page order.
pub fn candidate_lines(page: &[u8], offsets: &[usize]) -> Vec<(usize, usize)> {
    let mut spans: Vec<(usize, usize)> = Vec::new();
    for &o in offsets {
        if o >= page.len() {
            continue;
        }
        let start = page[..o]
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(0, |p| p + 1);
        let end = page[o..]
            .iter()
            .position(|&b| b == b'\n')
            .map_or(page.len(), |p| o + p);
        if spans.last() != Some(&(start, end)) {
            spans.push((start, end));
        }
    }
    spans.dedup();
    spans
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_lines_finds_enclosing_rows() {
        let page = b"|a|1|\n|b|2|\n|c|3|\n";
        // offsets inside the second row
        let spans = candidate_lines(page, &[7, 9]);
        assert_eq!(spans, vec![(6, 11)]);
        assert_eq!(&page[6..11], b"|b|2|");
    }

    #[test]
    fn candidate_lines_at_page_edges() {
        let page = b"|first|\n|last|";
        assert_eq!(candidate_lines(page, &[1]), vec![(0, 7)]);
        assert_eq!(candidate_lines(page, &[10]), vec![(8, 14)]);
    }

    #[test]
    fn multiple_hits_same_line_dedup() {
        let page = b"|xx|xx|\n";
        let spans = candidate_lines(page, &[1, 4]);
        assert_eq!(spans, vec![(0, 7)]);
    }

    #[test]
    fn module_registers_scan_filter() {
        let m = scan_module();
        assert_eq!(m.ssdlet_ids(), vec![AGGREGATE_ID, SCAN_FILTER_ID]);
    }
}
