//! Sharded query execution over an [`SsdArray`] (multi-SSD scale-out).
//!
//! [`ArrayDb`] owns one [`Db`] engine per drive of an [`SsdArray`] and
//! range-partitions every table contiguously across the shards at
//! `create_table` time: shard 0 holds the first `~rows/N` rows, shard 1
//! the next slice, and so on (slice sizes differ by at most one row).
//!
//! A query is executed by stripping the [`SelectSpec`] down to its single
//! base scan, scattering that scan-only spec to every shard through
//! [`SsdArray::scatter`] — in [`ExecMode::Biscuit`] each shard's planner
//! independently samples selectivity and offloads next to its own flash —
//! and gathering row batches through the ordered merge port. Because the
//! partition is contiguous and the merge emits shards in id order with
//! per-shard FIFO preserved, the concatenated rows are exactly the rows a
//! single-drive scan would have produced, in the same order. Residual
//! filtering, aggregation, projection, ordering and `LIMIT` then run once
//! on the host over the merged stream, mirroring the single-drive engine
//! tail, so results are byte-identical to a one-drive [`Db`] holding the
//! whole table.
//!
//! Drive loss (see [`biscuit_sim::fault::FaultConfig::drive_losses`]) is
//! handled by the coordinator: a shard that goes silent past the plan's
//! `host_timeout` is abandoned and its slice re-scanned through that
//! shard's Conv path, preserving result equality.

use std::sync::{Arc, Mutex};

use biscuit_host::array::{ShardFailure, SsdArray};
use biscuit_host::{HostConfig, HostLoad};
use biscuit_sim::kernel::Ctx;

use crate::engine::{Db, DbConfig, QueryOutput, QueryStats};
use crate::error::{DbError, DbResult};
use crate::exec;
use crate::schema::Schema;
use crate::spec::{ExecMode, SelectSpec};
use crate::value::Row;

/// A mini relational engine sharded across the drives of an [`SsdArray`].
///
/// Construction and [`create_table`](ArrayDb::create_table) are setup-time
/// operations on `&mut self`; execution ([`execute`](ArrayDb::execute)) is
/// `&self` and may run from many scheduler fibers concurrently.
#[derive(Debug)]
pub struct ArrayDb {
    array: SsdArray,
    dbs: Vec<Arc<Db>>,
    batch_rows: usize,
}

impl ArrayDb {
    /// Build one engine per shard of `array`, all with the same host and
    /// DB configuration.
    pub fn new(array: SsdArray, host_cfg: HostConfig, cfg: DbConfig) -> ArrayDb {
        let batch_rows = cfg.batch_rows.max(1);
        let dbs = array
            .shards()
            .iter()
            .map(|s| Arc::new(Db::new(s.ssd.clone(), host_cfg.clone(), cfg.clone())))
            .collect();
        ArrayDb {
            array,
            dbs,
            batch_rows,
        }
    }

    /// The underlying shard coordinator.
    pub fn array(&self) -> &SsdArray {
        &self.array
    }

    /// Number of drives the tables are partitioned over.
    pub fn shards(&self) -> usize {
        self.dbs.len()
    }

    /// The per-shard engine for `shard` (for inspection in tests).
    pub fn db(&self, shard: usize) -> &Db {
        &self.dbs[shard]
    }

    /// Create `name` on every shard, range-partitioning `rows` into
    /// contiguous slices (sizes differing by at most one row).
    ///
    /// Setup-time only: must run before any concurrent [`execute`] calls
    /// (the engines are still uniquely owned at that point).
    ///
    /// [`execute`]: ArrayDb::execute
    ///
    /// # Errors
    ///
    /// Propagates the first per-shard [`DbError`].
    pub fn create_table(&mut self, name: &str, schema: Schema, rows: &[Row]) -> DbResult<()> {
        let n = self.dbs.len();
        let base = rows.len() / n;
        let rem = rows.len() % n;
        let mut start = 0usize;
        for (i, db) in self.dbs.iter_mut().enumerate() {
            let len = base + usize::from(i < rem);
            let slice = &rows[start..start + len];
            start += len;
            Arc::get_mut(db)
                .expect("create_table must run before concurrent execution")
                .create_table(name, schema.clone(), slice)?;
        }
        Ok(())
    }

    /// Run each shard's one-time preparation (filesystem mount, module
    /// deployment checks).
    ///
    /// # Errors
    ///
    /// Propagates the first per-shard [`DbError`].
    pub fn prepare(&self, ctx: &Ctx) -> DbResult<()> {
        for db in &self.dbs {
            db.prepare(ctx)?;
        }
        Ok(())
    }

    /// Reduce `spec` to the scan-only sub-query each shard runs locally.
    fn shard_spec(&self, spec: &SelectSpec) -> DbResult<SelectSpec> {
        if spec.scans.len() != 1 || !spec.edges.is_empty() {
            return Err(DbError::Unsupported(format!(
                "ArrayDb executes single-table scans (query {:?} has {} scans, {} join edges)",
                spec.name,
                spec.scans.len(),
                spec.edges.len()
            )));
        }
        Ok(SelectSpec {
            name: format!("{}@shard", spec.name),
            scans: spec.scans.clone(),
            ..SelectSpec::default()
        })
    }

    /// Execute `spec` across every shard and merge the result.
    ///
    /// In [`ExecMode::Biscuit`] the per-shard pipelines run concurrently
    /// as simulation fibers and gather through the array's ordered merge
    /// port; in [`ExecMode::Conv`] the shards are scanned sequentially on
    /// the calling fiber (one host, one read loop — the scale-*up*
    /// baseline the paper compares against).
    ///
    /// # Errors
    ///
    /// [`DbError::Unsupported`] for multi-scan/join specs; otherwise the
    /// first per-shard error.
    pub fn execute(
        &self,
        ctx: &Ctx,
        spec: &SelectSpec,
        mode: ExecMode,
        load: HostLoad,
    ) -> DbResult<QueryOutput> {
        let shard_spec = self.shard_spec(spec)?;
        let t0 = ctx.now();

        let (acc, mut stats) = match mode {
            ExecMode::Conv => {
                let mut acc = Vec::new();
                let mut stats = QueryStats::default();
                for db in &self.dbs {
                    let out = db.execute(ctx, &shard_spec, ExecMode::Conv, load)?;
                    merge_stats(&mut stats, &out.stats);
                    acc.extend(out.rows);
                }
                (acc, stats)
            }
            ExecMode::Biscuit => {
                let n = self.dbs.len();
                let dbs = self.dbs.clone();
                let job_spec = shard_spec.clone();
                let batch = self.batch_rows;
                let shard_stats: Arc<Mutex<Vec<Option<QueryStats>>>> =
                    Arc::new(Mutex::new(vec![None; n]));
                let job_stats = Arc::clone(&shard_stats);
                let results = self.array.scatter::<Vec<Row>, DbError, _, _>(
                    ctx,
                    &format!("db-{}", spec.name),
                    move |fctx, shard, tx| {
                        let out = dbs[shard.id]
                            .execute(fctx, &job_spec, ExecMode::Biscuit, load)
                            .map_err(|e| ShardFailure::new(e.to_string()))?;
                        job_stats.lock().unwrap()[shard.id] = Some(out.stats);
                        for chunk in out.rows.chunks(batch.max(1)) {
                            tx.send(fctx, chunk.to_vec())
                                .map_err(|_| ShardFailure::new("merge lane abandoned"))?;
                        }
                        Ok(())
                    },
                    |fctx, shard| {
                        // Lost drive: re-scan this shard's slice through its
                        // Conv path for byte-identical rows.
                        let out =
                            self.dbs[shard.id].execute(fctx, &shard_spec, ExecMode::Conv, load)?;
                        Ok(out
                            .rows
                            .chunks(self.batch_rows)
                            .map(<[Row]>::to_vec)
                            .collect())
                    },
                )?;
                let mut acc = Vec::new();
                let mut stats = QueryStats::default();
                let per_shard = shard_stats.lock().unwrap();
                for r in results {
                    if !r.recovered {
                        if let Some(s) = per_shard[r.shard].as_ref() {
                            merge_stats(&mut stats, s);
                        }
                    }
                    for chunk in r.items {
                        acc.extend(chunk);
                    }
                }
                (acc, stats)
            }
        };

        // Host-side shaping over the merged stream — the same tail the
        // single-drive engine runs after its joins.
        let host = &self.dbs[0];
        let mut acc = acc;
        if let Some(res) = &spec.residual {
            host.charge_host_bytes(ctx, (acc.len() * 16) as u64, load);
            acc = exec::filter(res, acc)?;
        }
        let mut rows = if !spec.aggregates.is_empty() {
            host.charge_host_bytes(ctx, (acc.len() * 16) as u64, load);
            let mut out = exec::aggregate(spec, &acc)?;
            if let Some(h) = &spec.having {
                out = exec::filter(h, out)?;
            }
            out
        } else if !spec.projection.is_empty() {
            exec::project(&spec.projection, &acc)?
        } else {
            acc
        };
        exec::order_and_limit(&mut rows, &spec.order_by, spec.limit);

        stats.rows_out = rows.len();
        stats.elapsed = ctx.now() - t0;
        Ok(QueryOutput { rows, stats })
    }
}

/// Fold one shard's stats into the array-wide totals.
fn merge_stats(into: &mut QueryStats, from: &QueryStats) {
    for t in &from.offloaded_tables {
        if !into.offloaded_tables.contains(t) {
            into.offloaded_tables.push(t.clone());
        }
    }
    into.link_bytes_to_host += from.link_bytes_to_host;
    into.device_pages_scanned += from.device_pages_scanned;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpOp, Expr};
    use crate::spec::{AggFun, OrderKey};
    use crate::value::{ColumnType, Value};
    use biscuit_core::{CoreConfig, Ssd};
    use biscuit_fs::Fs;
    use biscuit_host::array::ArrayConfig;
    use biscuit_sim::Simulation;
    use biscuit_ssd::{SsdConfig, SsdDevice};

    fn mk_array(n: usize) -> SsdArray {
        let drives = (0..n)
            .map(|_| {
                let dev = Arc::new(SsdDevice::new(SsdConfig {
                    logical_capacity: 64 << 20,
                    ..SsdConfig::paper_default()
                }));
                Ssd::new(Fs::format(dev), CoreConfig::paper_default())
            })
            .collect();
        SsdArray::new(drives, HostConfig::paper_default(), ArrayConfig::default())
    }

    fn mk_rows(n: i64) -> Vec<Row> {
        (0..n)
            .map(|i| vec![Value::Int(i), Value::Int((i * 7) % 50)])
            .collect()
    }

    fn test_spec() -> SelectSpec {
        let mut spec = SelectSpec::new("t");
        spec.scan(
            "orders",
            Some(Expr::Cmp(
                CmpOp::Lt,
                Box::new(Expr::Col(1)),
                Box::new(Expr::Lit(Value::Int(10))),
            )),
        );
        spec
    }

    #[test]
    fn sharded_results_match_single_drive_in_both_modes() {
        let schema = Schema::new(&[("id", ColumnType::Int), ("qty", ColumnType::Int)]);
        let rows = mk_rows(997); // uneven split across 3 shards

        let mut solo = Db::new(
            mk_array(1).shard(0).ssd.clone(),
            HostConfig::paper_default(),
            DbConfig::paper_default(),
        );
        solo.create_table("orders", schema.clone(), &rows).unwrap();
        let solo = Arc::new(solo);

        let mut adb = ArrayDb::new(
            mk_array(3),
            HostConfig::paper_default(),
            DbConfig::paper_default(),
        );
        adb.create_table("orders", schema, &rows).unwrap();
        let adb = Arc::new(adb);

        let expect: Arc<Mutex<Vec<Row>>> = Arc::new(Mutex::new(Vec::new()));
        let sim = Simulation::new(7);
        {
            let solo = Arc::clone(&solo);
            let expect = Arc::clone(&expect);
            sim.spawn("solo", move |ctx| {
                let out = solo
                    .execute(ctx, &test_spec(), ExecMode::Conv, HostLoad::IDLE)
                    .unwrap();
                *expect.lock().unwrap() = out.rows;
            });
        }
        sim.run().assert_quiescent();
        let expect = Arc::try_unwrap(expect).unwrap().into_inner().unwrap();
        assert!(!expect.is_empty());

        for mode in [ExecMode::Conv, ExecMode::Biscuit] {
            let adb = Arc::clone(&adb);
            let expect = expect.clone();
            let sim = Simulation::new(7);
            sim.spawn("arr", move |ctx| {
                adb.prepare(ctx).unwrap();
                let out = adb
                    .execute(ctx, &test_spec(), mode, HostLoad::IDLE)
                    .unwrap();
                assert_eq!(out.rows, expect, "mode {mode:?} diverged from single drive");
                assert_eq!(out.stats.rows_out, expect.len());
            });
            sim.run().assert_quiescent();
        }
    }

    #[test]
    fn aggregates_order_and_limit_shape_on_the_host() {
        let schema = Schema::new(&[("id", ColumnType::Int), ("qty", ColumnType::Int)]);
        let rows = mk_rows(600);

        let mut spec = SelectSpec::new("agg");
        spec.scan("orders", None);
        spec.group_by = vec![Expr::Col(1)];
        spec.aggregates = vec![(AggFun::Count, Expr::Col(0))];
        spec.order_by = vec![OrderKey {
            col: 0,
            desc: false,
        }];
        spec.limit = Some(5);

        let mut solo = Db::new(
            mk_array(1).shard(0).ssd.clone(),
            HostConfig::paper_default(),
            DbConfig::paper_default(),
        );
        solo.create_table("orders", schema.clone(), &rows).unwrap();
        let mut adb = ArrayDb::new(
            mk_array(4),
            HostConfig::paper_default(),
            DbConfig::paper_default(),
        );
        adb.create_table("orders", schema, &rows).unwrap();
        let solo = Arc::new(solo);
        let adb = Arc::new(adb);

        let sim = Simulation::new(11);
        sim.spawn("cmp", move |ctx| {
            adb.prepare(ctx).unwrap();
            let want = solo
                .execute(ctx, &spec, ExecMode::Conv, HostLoad::IDLE)
                .unwrap();
            let got = adb
                .execute(ctx, &spec, ExecMode::Biscuit, HostLoad::IDLE)
                .unwrap();
            assert_eq!(got.rows, want.rows);
            assert_eq!(got.rows.len(), 5);
        });
        sim.run().assert_quiescent();
    }

    #[test]
    fn joins_are_rejected_as_unsupported() {
        let schema = Schema::new(&[("id", ColumnType::Int), ("qty", ColumnType::Int)]);
        let mut adb = ArrayDb::new(
            mk_array(2),
            HostConfig::paper_default(),
            DbConfig::paper_default(),
        );
        adb.create_table("a", schema.clone(), &mk_rows(10)).unwrap();
        adb.create_table("b", schema, &mk_rows(10)).unwrap();
        let adb = Arc::new(adb);

        let sim = Simulation::new(0);
        sim.spawn("join", move |ctx| {
            let mut spec = SelectSpec::new("j");
            let l = spec.scan("a", None);
            let r = spec.scan("b", None);
            spec.join(l, 0, r, 0);
            match adb.execute(ctx, &spec, ExecMode::Conv, HostLoad::IDLE) {
                Err(DbError::Unsupported(_)) => {}
                other => panic!("expected Unsupported, got {other:?}"),
            }
        });
        sim.run().assert_quiescent();
    }
}
