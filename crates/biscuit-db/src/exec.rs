//! Join, aggregation, and output-shaping executors.
//!
//! The join algorithm is block nested-loop with an in-block hash, matching
//! the paper's description of MariaDB's non-indexed join path: the outer
//! side is consumed in blocks, and **the inner table is re-scanned from
//! storage for every outer block**. That re-scan is exactly the I/O
//! amplification that early NDP filtering collapses — the paper's Q14 saw a
//! 315x I/O reduction because the filtered table moved first in the join
//! order and shrank the outer block count.

use std::collections::HashMap;

use crate::error::{DbError, DbResult};
use crate::expr::Expr;
use crate::spec::{AggFun, OrderKey, SelectSpec};
use crate::value::{Row, Value};

/// Widens local rows into the global flat row space, moving each value into
/// place (no cell clones).
pub fn widen(local: Vec<Row>, offset: usize, width: usize) -> Vec<Row> {
    local
        .into_iter()
        .map(|r| {
            let mut g = vec![Value::Int(0); width];
            for (slot, v) in g[offset..offset + r.len()].iter_mut().zip(r) {
                *slot = v;
            }
            g
        })
        .collect()
}

/// Hash key for a tuple of values (uses the canonical text form so that
/// floats and dates hash consistently with their equality).
pub fn key_of(values: &[Value]) -> String {
    let mut s = String::new();
    for v in values {
        s.push_str(&v.to_text());
        s.push('\u{1f}');
    }
    s
}

/// [`key_of`] over selected columns of a row, without gathering the values
/// into a temporary `Vec` first.
fn key_of_cols(row: &[Value], cols: &[usize]) -> String {
    let mut s = String::new();
    for &c in cols {
        s.push_str(&row[c].to_text());
        s.push('\u{1f}');
    }
    s
}

/// Probes `inner_local` rows against a hash of the outer block and emits
/// merged global rows. `outer_cols` are global indices into the outer rows;
/// `inner_cols` are local indices into the inner rows; `offset` is where the
/// inner table's columns live in the global row.
pub fn hash_probe_block(
    outer_block: &[Row],
    outer_cols: &[usize],
    inner_local: &[Row],
    inner_cols: &[usize],
    offset: usize,
    out: &mut Vec<Row>,
) {
    let mut table: HashMap<String, Vec<usize>> = HashMap::new();
    for (i, row) in outer_block.iter().enumerate() {
        table
            .entry(key_of_cols(row, outer_cols))
            .or_default()
            .push(i);
    }
    for inner in inner_local {
        if let Some(matches) = table.get(&key_of_cols(inner, inner_cols)) {
            for &oi in matches {
                let mut merged = outer_block[oi].clone();
                merged[offset..offset + inner.len()].clone_from_slice(inner);
                out.push(merged);
            }
        }
    }
}

/// Cross-joins when no edge connects the inner table (TPC-H never needs
/// this, but the executor should not silently mis-join).
pub fn cross_block(outer_block: &[Row], inner_local: &[Row], offset: usize, out: &mut Vec<Row>) {
    for o in outer_block {
        for inner in inner_local {
            let mut merged = o.clone();
            merged[offset..offset + inner.len()].clone_from_slice(inner);
            out.push(merged);
        }
    }
}

/// Streaming aggregate accumulator (shared with the device-side
/// aggregation SSDlet).
pub(crate) struct AggState {
    sum: f64,
    count: u64,
    min: Option<Value>,
    max: Option<Value>,
}

impl AggState {
    pub(crate) fn new() -> Self {
        AggState {
            sum: 0.0,
            count: 0,
            min: None,
            max: None,
        }
    }

    pub(crate) fn update(&mut self, v: &Value) {
        self.count += 1;
        if let Some(x) = v.as_f64() {
            self.sum += x;
        }
        let better_min = self
            .min
            .as_ref()
            .map(|m| v.compare(m).map(|o| o.is_lt()).unwrap_or(false))
            .unwrap_or(true);
        if better_min {
            self.min = Some(v.clone());
        }
        let better_max = self
            .max
            .as_ref()
            .map(|m| v.compare(m).map(|o| o.is_gt()).unwrap_or(false))
            .unwrap_or(true);
        if better_max {
            self.max = Some(v.clone());
        }
    }

    pub(crate) fn finish(&self, fun: AggFun) -> Value {
        match fun {
            AggFun::Sum => Value::Float(self.sum),
            AggFun::Count => Value::Int(self.count as i64),
            AggFun::Avg => {
                if self.count == 0 {
                    Value::Float(0.0)
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            AggFun::Min => self.min.clone().unwrap_or(Value::Int(0)),
            AggFun::Max => self.max.clone().unwrap_or(Value::Int(0)),
        }
    }
}

/// Group-by + aggregation. Output rows are `group values ++ agg values`.
///
/// With no group-by columns the result is a single row (even over empty
/// input, where sums/counts are zero — a simplification of SQL's NULLs).
///
/// # Errors
///
/// Propagates expression evaluation errors.
pub fn aggregate(spec: &SelectSpec, rows: &[Row]) -> DbResult<Vec<Row>> {
    let mut groups: HashMap<String, (Row, Vec<AggState>)> = HashMap::new();
    for row in rows {
        let gvals: Row = spec
            .group_by
            .iter()
            .map(|e| e.eval(row))
            .collect::<DbResult<_>>()?;
        let entry = groups.entry(key_of(&gvals)).or_insert_with(|| {
            (
                gvals.clone(),
                spec.aggregates.iter().map(|_| AggState::new()).collect(),
            )
        });
        for ((_, expr), st) in spec.aggregates.iter().zip(entry.1.iter_mut()) {
            st.update(&expr.eval(row)?);
        }
    }
    if groups.is_empty() && spec.group_by.is_empty() {
        groups.insert(
            String::new(),
            (
                Vec::new(),
                spec.aggregates.iter().map(|_| AggState::new()).collect(),
            ),
        );
    }
    let mut out: Vec<Row> = groups
        .into_values()
        .map(|(gvals, states)| {
            let mut row = gvals;
            for ((fun, _), st) in spec.aggregates.iter().zip(states.iter()) {
                row.push(st.finish(*fun));
            }
            row
        })
        .collect();
    // Deterministic base order before explicit ORDER BY.
    out.sort_by_key(|row| key_of(row));
    Ok(out)
}

/// Applies ORDER BY (stable) and LIMIT to output rows.
pub fn order_and_limit(rows: &mut Vec<Row>, order: &[OrderKey], limit: Option<usize>) {
    if !order.is_empty() {
        rows.sort_by(|a, b| {
            for k in order {
                let ord = a[k.col]
                    .compare(&b[k.col])
                    .unwrap_or(std::cmp::Ordering::Equal);
                let ord = if k.desc { ord.reverse() } else { ord };
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
    }
    if let Some(n) = limit {
        rows.truncate(n);
    }
}

/// Evaluates a projection list over each row.
///
/// # Errors
///
/// Propagates expression evaluation errors.
pub fn project(exprs: &[Expr], rows: &[Row]) -> DbResult<Vec<Row>> {
    rows.iter()
        .map(|r| exprs.iter().map(|e| e.eval(r)).collect::<DbResult<Row>>())
        .collect()
}

/// Applies a filter predicate.
///
/// # Errors
///
/// Propagates expression evaluation errors.
pub fn filter(pred: &Expr, rows: Vec<Row>) -> DbResult<Vec<Row>> {
    let mut out = Vec::with_capacity(rows.len());
    for r in rows {
        if pred.eval_bool(&r)? {
            out.push(r);
        }
    }
    Ok(out)
}

/// Applies a filter predicate over borrowed rows, cloning only the rows that
/// qualify — for callers holding a shared table snapshot, where cloning the
/// whole table just to discard most of it would dwarf the result.
///
/// # Errors
///
/// Propagates expression evaluation errors.
pub fn filter_ref(pred: &Expr, rows: &[Row]) -> DbResult<Vec<Row>> {
    let mut out = Vec::new();
    for r in rows {
        if pred.eval_bool(r)? {
            out.push(r.clone());
        }
    }
    Ok(out)
}

/// Validation helper: every output row width matches expectations.
pub fn check_width(rows: &[Row], width: usize) -> DbResult<()> {
    for r in rows {
        if r.len() != width {
            return Err(DbError::TypeError(format!(
                "row width {} != expected {width}",
                r.len()
            )));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SelectSpec;

    fn v(i: i64) -> Value {
        Value::Int(i)
    }

    #[test]
    fn widen_places_columns() {
        let rows = widen(vec![vec![v(1), v(2)]], 2, 5);
        assert_eq!(rows[0], vec![v(0), v(0), v(1), v(2), v(0)]);
    }

    #[test]
    fn hash_probe_matches_equal_keys() {
        let outer = widen(vec![vec![v(1), v(10)], vec![v(2), v(20)]], 0, 4);
        let inner = vec![vec![v(20), v(200)], vec![v(30), v(300)]];
        let mut out = Vec::new();
        hash_probe_block(&outer, &[1], &inner, &[0], 2, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0], vec![v(2), v(20), v(20), v(200)]);
    }

    #[test]
    fn multi_column_join_keys() {
        let outer = widen(vec![vec![v(1), v(2)]], 0, 4);
        let inner_match = vec![vec![v(1), v(2)]];
        let inner_miss = vec![vec![v(1), v(3)]];
        let mut out = Vec::new();
        hash_probe_block(&outer, &[0, 1], &inner_match, &[0, 1], 2, &mut out);
        assert_eq!(out.len(), 1);
        out.clear();
        hash_probe_block(&outer, &[0, 1], &inner_miss, &[0, 1], 2, &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn aggregate_grouped_sums() {
        let mut spec = SelectSpec::new("t");
        spec.group_by = vec![Expr::Col(0)];
        spec.aggregates = vec![(AggFun::Sum, Expr::Col(1)), (AggFun::Count, Expr::Col(1))];
        let rows = vec![vec![v(1), v(10)], vec![v(2), v(20)], vec![v(1), v(30)]];
        let out = aggregate(&spec, &rows).unwrap();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0], vec![v(1), Value::Float(40.0), v(2)]);
        assert_eq!(out[1], vec![v(2), Value::Float(20.0), v(1)]);
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let mut spec = SelectSpec::new("t");
        spec.aggregates = vec![(AggFun::Count, Expr::Col(0)), (AggFun::Sum, Expr::Col(0))];
        let out = aggregate(&spec, &[]).unwrap();
        assert_eq!(out, vec![vec![v(0), Value::Float(0.0)]]);
    }

    #[test]
    fn min_max_avg() {
        let mut spec = SelectSpec::new("t");
        spec.aggregates = vec![
            (AggFun::Min, Expr::Col(0)),
            (AggFun::Max, Expr::Col(0)),
            (AggFun::Avg, Expr::Col(0)),
        ];
        let rows = vec![vec![v(4)], vec![v(2)], vec![v(6)]];
        let out = aggregate(&spec, &rows).unwrap();
        assert_eq!(out[0], vec![v(2), v(6), Value::Float(4.0)]);
    }

    #[test]
    fn order_and_limit_applies() {
        let mut rows = vec![vec![v(3)], vec![v(1)], vec![v(2)]];
        order_and_limit(&mut rows, &[OrderKey { col: 0, desc: true }], Some(2));
        assert_eq!(rows, vec![vec![v(3)], vec![v(2)]]);
    }

    #[test]
    fn cross_block_is_product() {
        let outer = widen(vec![vec![v(1)], vec![v(2)]], 0, 2);
        let inner = vec![vec![v(8)], vec![v(9)]];
        let mut out = Vec::new();
        cross_block(&outer, &inner, 1, &mut out);
        assert_eq!(out.len(), 4);
    }
}
