//! Scalar expressions: evaluation, SQL `LIKE`, and pattern-key extraction
//! for the NDP offload planner.
//!
//! Key extraction is the compatibility analysis the paper's modified query
//! planner performs (§V-C): a filter predicate is pattern-matcher friendly
//! only if a small set of byte keys (≤3 keys, ≤16 bytes each) is guaranteed
//! to occur in the on-flash text of *every* satisfying row. Predicates the
//! hardware cannot help with — `NOT LIKE`, inequalities over wide ranges,
//! single-character literals — yield no keys, and the planner keeps those
//! scans on the host, exactly like the eight non-offloaded TPC-H queries in
//! Fig. 10.

use crate::error::{DbError, DbResult};
use crate::value::{format_date, Row, Value};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

/// Arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

/// A scalar expression over a row.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Column reference by index.
    Col(usize),
    /// Literal value.
    Lit(Value),
    /// Comparison.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Conjunction.
    And(Vec<Expr>),
    /// Disjunction.
    Or(Vec<Expr>),
    /// Negation.
    Not(Box<Expr>),
    /// SQL `LIKE` with `%` wildcards (no `_` support; TPC-H does not use it).
    Like(Box<Expr>, String),
    /// SQL `NOT LIKE`.
    NotLike(Box<Expr>, String),
    /// `expr IN (v1, v2, ...)`.
    InList(Box<Expr>, Vec<Value>),
    /// `expr BETWEEN lo AND hi` (inclusive).
    Between(Box<Expr>, Value, Value),
    /// Arithmetic.
    Arith(ArithOp, Box<Expr>, Box<Expr>),
    /// Calendar year of a date expression (as `Int`).
    Year(Box<Expr>),
    /// `CASE WHEN cond THEN a ELSE b END`.
    Case(Box<Expr>, Box<Expr>, Box<Expr>),
    /// First `n` characters of a string expression.
    Prefix(Box<Expr>, usize),
}

impl Expr {
    /// Shorthand: `col = lit`.
    pub fn col_eq(col: usize, v: Value) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(Expr::Col(col)), Box::new(Expr::Lit(v)))
    }

    /// Shorthand: `col <op> lit`.
    pub fn col_cmp(col: usize, op: CmpOp, v: Value) -> Expr {
        Expr::Cmp(op, Box::new(Expr::Col(col)), Box::new(Expr::Lit(v)))
    }

    /// Evaluates against a row.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::TypeError`] on incomparable operands.
    pub fn eval(&self, row: &Row) -> DbResult<Value> {
        match self {
            Expr::Col(i) => row
                .get(*i)
                .cloned()
                .ok_or_else(|| DbError::TypeError(format!("column {i} out of range"))),
            Expr::Lit(v) => Ok(v.clone()),
            Expr::Cmp(op, a, b) => {
                let (a, b) = (a.eval_cow(row)?, b.eval_cow(row)?);
                let ord = a
                    .compare(&b)
                    .ok_or_else(|| DbError::TypeError(format!("cannot compare {a:?} and {b:?}")))?;
                let r = match op {
                    CmpOp::Eq => ord.is_eq(),
                    CmpOp::Ne => ord.is_ne(),
                    CmpOp::Lt => ord.is_lt(),
                    CmpOp::Le => ord.is_le(),
                    CmpOp::Gt => ord.is_gt(),
                    CmpOp::Ge => ord.is_ge(),
                };
                Ok(Value::Int(i64::from(r)))
            }
            Expr::And(xs) => {
                for x in xs {
                    if !x.eval_bool(row)? {
                        return Ok(Value::Int(0));
                    }
                }
                Ok(Value::Int(1))
            }
            Expr::Or(xs) => {
                for x in xs {
                    if x.eval_bool(row)? {
                        return Ok(Value::Int(1));
                    }
                }
                Ok(Value::Int(0))
            }
            Expr::Not(x) => Ok(Value::Int(i64::from(!x.eval_bool(row)?))),
            Expr::Like(x, pat) => {
                let v = x.eval_cow(row)?;
                let s = v
                    .as_str()
                    .ok_or_else(|| DbError::TypeError("LIKE on non-string".into()))?;
                Ok(Value::Int(i64::from(like_match(s, pat))))
            }
            Expr::NotLike(x, pat) => {
                let v = x.eval_cow(row)?;
                let s = v
                    .as_str()
                    .ok_or_else(|| DbError::TypeError("NOT LIKE on non-string".into()))?;
                Ok(Value::Int(i64::from(!like_match(s, pat))))
            }
            Expr::InList(x, vals) => {
                let v = x.eval_cow(row)?;
                let hit = vals
                    .iter()
                    .any(|c| v.compare(c).map(|o| o.is_eq()).unwrap_or(false));
                Ok(Value::Int(i64::from(hit)))
            }
            Expr::Between(x, lo, hi) => {
                let v = x.eval_cow(row)?;
                let ge = v
                    .compare(lo)
                    .map(|o| o.is_ge())
                    .ok_or_else(|| DbError::TypeError("BETWEEN on incomparable values".into()))?;
                let le = v
                    .compare(hi)
                    .map(|o| o.is_le())
                    .ok_or_else(|| DbError::TypeError("BETWEEN on incomparable values".into()))?;
                Ok(Value::Int(i64::from(ge && le)))
            }
            Expr::Arith(op, a, b) => {
                let (x, y) = (a.eval_cow(row)?, b.eval_cow(row)?);
                let (x, y) = (
                    x.as_f64()
                        .ok_or_else(|| DbError::TypeError("arith on non-number".into()))?,
                    y.as_f64()
                        .ok_or_else(|| DbError::TypeError("arith on non-number".into()))?,
                );
                let r = match op {
                    ArithOp::Add => x + y,
                    ArithOp::Sub => x - y,
                    ArithOp::Mul => x * y,
                    ArithOp::Div => x / y,
                };
                Ok(Value::Float(r))
            }
            Expr::Year(x) => match x.eval_cow(row)?.as_ref() {
                Value::Date(d) => {
                    let text = format_date(*d);
                    let year: i64 = text[..4]
                        .parse()
                        .map_err(|_| DbError::TypeError("bad year".into()))?;
                    Ok(Value::Int(year))
                }
                other => Err(DbError::TypeError(format!("YEAR of non-date {other:?}"))),
            },
            Expr::Case(cond, then, otherwise) => {
                if cond.eval_bool(row)? {
                    then.eval(row)
                } else {
                    otherwise.eval(row)
                }
            }
            Expr::Prefix(x, n) => {
                let v = x.eval_cow(row)?;
                let s = v
                    .as_str()
                    .ok_or_else(|| DbError::TypeError("PREFIX of non-string".into()))?;
                let cut = s.char_indices().nth(*n).map_or(s.len(), |(i, _)| i);
                Ok(Value::Str(s[..cut].to_owned()))
            }
        }
    }

    /// Evaluates to a borrowed value when the expression is a plain column
    /// reference or literal — the overwhelmingly common operand shape in
    /// predicates — and to an owned value otherwise. Keeps per-row predicate
    /// evaluation from cloning cell contents (string columns in particular)
    /// just to compare them.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::TypeError`] as for [`Expr::eval`].
    fn eval_cow<'a>(&'a self, row: &'a Row) -> DbResult<std::borrow::Cow<'a, Value>> {
        match self {
            Expr::Col(i) => row
                .get(*i)
                .map(std::borrow::Cow::Borrowed)
                .ok_or_else(|| DbError::TypeError(format!("column {i} out of range"))),
            Expr::Lit(v) => Ok(std::borrow::Cow::Borrowed(v)),
            other => Ok(std::borrow::Cow::Owned(other.eval(row)?)),
        }
    }

    /// Evaluates as a boolean (nonzero numeric = true).
    ///
    /// # Errors
    ///
    /// Returns [`DbError::TypeError`] as for [`Expr::eval`].
    pub fn eval_bool(&self, row: &Row) -> DbResult<bool> {
        let v = self.eval(row)?;
        v.as_f64()
            .map(|x| x != 0.0)
            .ok_or_else(|| DbError::TypeError(format!("non-boolean predicate value {v:?}")))
    }
}

/// SQL `LIKE` with `%` wildcards only.
pub fn like_match(s: &str, pattern: &str) -> bool {
    if !pattern.contains('%') {
        return s == pattern;
    }
    let parts: Vec<&str> = pattern.split('%').collect();
    let (first, last) = (parts[0], parts[parts.len() - 1]);
    let mut rest = s;
    // Anchored prefix.
    if !first.is_empty() {
        match rest.strip_prefix(first) {
            Some(r) => rest = r,
            None => return false,
        }
    }
    // Middle fragments, in order.
    for part in &parts[1..parts.len() - 1] {
        if part.is_empty() {
            continue;
        }
        match rest.find(part) {
            Some(i) => rest = &rest[i + part.len()..],
            None => return false,
        }
    }
    // Anchored suffix.
    if !last.is_empty() {
        return rest.ends_with(last);
    }
    true
}

/// Limits imported from the hardware (kept here to avoid a dependency
/// cycle; validated against `biscuit_ssd::PatternLimits` in tests).
const MAX_KEYS: usize = 3;
const MAX_KEY_LEN: usize = 16;
/// "Predicate is a single character" — the paper's planner rejects keys
/// this short as useless discriminators. Framed keys carry two pipe bytes,
/// so a 4-byte minimum rejects `|x|` while keeping `|15|`.
const MIN_KEY_LEN: usize = 4;

fn keys_valid(keys: &[Vec<u8>]) -> bool {
    !keys.is_empty()
        && keys.len() <= MAX_KEYS
        && keys
            .iter()
            .all(|k| (MIN_KEY_LEN..=MAX_KEY_LEN).contains(&k.len()))
}

/// Byte keys guaranteed to appear in the on-flash text of every row
/// satisfying the predicate, or `None` if the predicate is not
/// pattern-matcher friendly.
pub fn pattern_keys(expr: &Expr) -> Option<Vec<Vec<u8>>> {
    let keys = extract(expr)?;
    if !keys_valid(&keys) {
        return None;
    }
    Some(keys)
}

/// Column-literal key including the pipe frame: `|value|`.
fn framed(lit: &Value) -> Vec<u8> {
    format!("|{}|", lit.to_text()).into_bytes()
}

/// Prefix key for a value: `|prefix` (matches any column starting with it).
fn prefix_key(prefix: &str) -> Vec<u8> {
    format!("|{prefix}").into_bytes()
}

fn extract(expr: &Expr) -> Option<Vec<Vec<u8>>> {
    match expr {
        Expr::Cmp(CmpOp::Eq, a, b) => match (&**a, &**b) {
            (Expr::Col(_), Expr::Lit(v)) | (Expr::Lit(v), Expr::Col(_)) => Some(vec![framed(v)]),
            _ => None,
        },
        Expr::InList(x, vals) => {
            if !matches!(**x, Expr::Col(_)) || vals.len() > MAX_KEYS {
                return None;
            }
            Some(vals.iter().map(framed).collect())
        }
        Expr::Like(x, pat) if matches!(**x, Expr::Col(_)) => like_key(pat),
        Expr::Between(x, lo, hi) => {
            if !matches!(**x, Expr::Col(_)) {
                return None;
            }
            let prefixes = date_range_prefixes(lo, hi)?;
            Some(prefixes.iter().map(|p| prefix_key(p)).collect())
        }
        Expr::And(xs) => {
            // Any single conjunct's keys over-approximate the conjunction;
            // among hardware-valid candidates, prefer the longest (most
            // selective).
            xs.iter()
                .filter_map(extract)
                .filter(|keys| keys_valid(keys))
                .max_by_key(|keys| keys.iter().map(Vec::len).min().unwrap_or(0))
        }
        Expr::Or(xs) => {
            // Every branch must contribute keys.
            let mut all = Vec::new();
            for x in xs {
                all.extend(extract(x)?);
            }
            if all.len() > MAX_KEYS {
                return None;
            }
            Some(all)
        }
        // Range comparisons: a pair like (col >= lo AND col < hi) is handled
        // at the And level via Between in query builders; raw inequalities,
        // negations, NOT LIKE, and arithmetic are not matchable.
        _ => None,
    }
}

fn like_key(pat: &str) -> Option<Vec<Vec<u8>>> {
    // `%frag%` → unanchored fragment key; `frag%` → anchored prefix key
    // `|frag`; fragments must fit hardware limits.
    let trimmed = pat.trim_matches('%');
    if trimmed.contains('%') || trimmed.is_empty() {
        // Multiple fragments: take the longest single fragment.
        let best = pat
            .split('%')
            .filter(|f| !f.is_empty())
            .max_by_key(|f| f.len())?;
        return Some(vec![best.as_bytes().to_vec()]);
    }
    if let Some(prefix) = pat.strip_suffix('%') {
        if !prefix.contains('%') {
            return Some(vec![prefix_key(prefix)]);
        }
    }
    Some(vec![trimmed.as_bytes().to_vec()])
}

/// For a date interval `[lo, hi]`, finds text prefixes that exactly cover
/// the interval: up to three whole months (`1995-09`, `1995-10`, ...) or up
/// to three whole years (`1995-`). A quarter thus compresses to three month
/// keys; wider or misaligned ranges are not matchable.
fn date_range_prefixes(lo: &Value, hi: &Value) -> Option<Vec<String>> {
    let (Value::Date(lo), Value::Date(hi)) = (lo, hi) else {
        return None;
    };
    if hi < lo {
        return None;
    }
    let (lo_s, hi_s) = (format_date(*lo), format_date(*hi));
    // Whole months: lo = YYYY-MM-01, hi = a month end, span <= MAX_KEYS.
    if lo_s.ends_with("-01") && is_month_end(*hi) {
        let y0: i32 = lo_s[..4].parse().ok()?;
        let m0: i32 = lo_s[5..7].parse().ok()?;
        let y1: i32 = hi_s[..4].parse().ok()?;
        let m1: i32 = hi_s[5..7].parse().ok()?;
        let span = (y1 * 12 + m1) - (y0 * 12 + m0) + 1;
        if (1..=MAX_KEYS as i32).contains(&span) {
            let months = (0..span)
                .map(|i| {
                    let total = y0 * 12 + (m0 - 1) + i;
                    format!("{:04}-{:02}", total / 12, total % 12 + 1)
                })
                .collect();
            return Some(months);
        }
    }
    // Whole years: lo = YYYY-01-01, hi = YYYY-12-31, span <= MAX_KEYS.
    if lo_s.ends_with("-01-01") && hi_s.ends_with("-12-31") {
        let y0: i32 = lo_s[..4].parse().ok()?;
        let y1: i32 = hi_s[..4].parse().ok()?;
        let span = (y1 - y0 + 1) as usize;
        if (1..=MAX_KEYS).contains(&span) {
            return Some((y0..=y1).map(|y| format!("{y:04}-")).collect());
        }
    }
    None
}

fn is_month_end(d: i32) -> bool {
    format_date(d + 1).ends_with("-01")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::parse_date;

    fn row() -> Row {
        vec![
            Value::Int(3),
            Value::Str("PROMO ANODIZED".into()),
            Value::Float(0.05),
            Value::date("1995-09-14"),
        ]
    }

    #[test]
    fn comparisons() {
        let r = row();
        assert!(Expr::col_eq(0, Value::Int(3)).eval_bool(&r).unwrap());
        assert!(Expr::col_cmp(2, CmpOp::Le, Value::Float(0.05))
            .eval_bool(&r)
            .unwrap());
        assert!(!Expr::col_cmp(3, CmpOp::Lt, Value::date("1995-09-14"))
            .eval_bool(&r)
            .unwrap());
    }

    #[test]
    fn boolean_combinators() {
        let r = row();
        let t = Expr::col_eq(0, Value::Int(3));
        let f = Expr::col_eq(0, Value::Int(4));
        assert!(Expr::And(vec![t.clone(), t.clone()]).eval_bool(&r).unwrap());
        assert!(!Expr::And(vec![t.clone(), f.clone()]).eval_bool(&r).unwrap());
        assert!(Expr::Or(vec![f.clone(), t.clone()]).eval_bool(&r).unwrap());
        assert!(Expr::Not(Box::new(f)).eval_bool(&r).unwrap());
    }

    #[test]
    fn like_semantics() {
        assert!(like_match("PROMO ANODIZED", "PROMO%"));
        assert!(like_match("PROMO ANODIZED", "%ANODIZED"));
        assert!(like_match("PROMO ANODIZED", "%MO ANO%"));
        assert!(like_match("special requests here", "%special%requests%"));
        assert!(!like_match("requests special", "%special%requests%"));
        assert!(like_match("exact", "exact"));
        assert!(!like_match("exactx", "exact"));
        assert!(like_match("anything", "%"));
    }

    #[test]
    fn between_and_in() {
        let r = row();
        assert!(Expr::Between(
            Box::new(Expr::Col(3)),
            Value::date("1995-09-01"),
            Value::date("1995-09-30"),
        )
        .eval_bool(&r)
        .unwrap());
        assert!(
            Expr::InList(Box::new(Expr::Col(0)), vec![Value::Int(1), Value::Int(3)])
                .eval_bool(&r)
                .unwrap()
        );
    }

    #[test]
    fn arithmetic() {
        let r = row();
        let e = Expr::Arith(
            ArithOp::Mul,
            Box::new(Expr::Col(2)),
            Box::new(Expr::Lit(Value::Float(100.0))),
        );
        assert_eq!(e.eval(&r).unwrap(), Value::Float(5.0));
    }

    #[test]
    fn equality_yields_framed_key() {
        let e = Expr::col_eq(3, Value::date("1995-01-17"));
        assert_eq!(pattern_keys(&e).unwrap(), vec![b"|1995-01-17|".to_vec()]);
    }

    #[test]
    fn or_of_equalities_yields_multiple_keys() {
        let e = Expr::Or(vec![
            Expr::col_eq(3, Value::date("1995-01-17")),
            Expr::col_eq(3, Value::date("1995-01-18")),
        ]);
        assert_eq!(pattern_keys(&e).unwrap().len(), 2);
    }

    #[test]
    fn and_picks_a_keyed_conjunct() {
        let e = Expr::And(vec![
            Expr::col_cmp(2, CmpOp::Lt, Value::Float(0.07)), // no keys
            Expr::col_eq(3, Value::date("1995-01-17")),      // keys
        ]);
        assert_eq!(pattern_keys(&e).unwrap(), vec![b"|1995-01-17|".to_vec()]);
    }

    #[test]
    fn month_range_becomes_prefix_key() {
        let e = Expr::Between(
            Box::new(Expr::Col(3)),
            Value::date("1995-09-01"),
            Value::date("1995-09-30"),
        );
        assert_eq!(pattern_keys(&e).unwrap(), vec![b"|1995-09".to_vec()]);
    }

    #[test]
    fn year_range_becomes_prefix_key() {
        let e = Expr::Between(
            Box::new(Expr::Col(3)),
            Value::date("1995-01-01"),
            Value::date("1995-12-31"),
        );
        assert_eq!(pattern_keys(&e).unwrap(), vec![b"|1995-".to_vec()]);
    }

    #[test]
    fn unfriendly_predicates_yield_no_keys() {
        // Open range: no keys.
        assert!(pattern_keys(&Expr::col_cmp(3, CmpOp::Le, Value::date("1998-09-02"))).is_none());
        // NOT LIKE: the hardware cannot prove absence.
        assert!(pattern_keys(&Expr::NotLike(Box::new(Expr::Col(1)), "%special%".into())).is_none());
        // Single-character literal: rejected as in the paper.
        assert!(pattern_keys(&Expr::col_eq(1, Value::Str("x".into()))).is_none());
        // Too many OR branches.
        let e = Expr::Or(vec![
            Expr::col_eq(0, Value::Int(11)),
            Expr::col_eq(0, Value::Int(12)),
            Expr::col_eq(0, Value::Int(13)),
            Expr::col_eq(0, Value::Int(14)),
        ]);
        assert!(pattern_keys(&e).is_none());
    }

    #[test]
    fn like_fragment_key() {
        let e = Expr::Like(Box::new(Expr::Col(1)), "%ANODIZED%".into());
        assert_eq!(pattern_keys(&e).unwrap(), vec![b"ANODIZED".to_vec()]);
        let e = Expr::Like(Box::new(Expr::Col(1)), "PROMO%".into());
        assert_eq!(pattern_keys(&e).unwrap(), vec![b"|PROMO".to_vec()]);
    }

    #[test]
    fn keys_occur_in_satisfying_rows() {
        // Soundness: any row satisfying the predicate contains a key in its
        // serialized text.
        use crate::value::row_to_text;
        let e = Expr::And(vec![
            Expr::col_eq(3, Value::date("1995-09-14")),
            Expr::col_cmp(0, CmpOp::Ge, Value::Int(0)),
        ]);
        let keys = pattern_keys(&e).unwrap();
        let r = row();
        assert!(e.eval_bool(&r).unwrap());
        let text = row_to_text(&r);
        assert!(keys
            .iter()
            .any(|k| text.as_bytes().windows(k.len()).any(|w| w == &k[..])));
    }

    #[test]
    fn date_helpers() {
        assert!(is_month_end(parse_date("1995-09-30").unwrap()));
        assert!(!is_month_end(parse_date("1995-09-29").unwrap()));
        assert!(is_month_end(parse_date("1996-02-29").unwrap()));
    }
}
