//! TPC-H table schemas (full standard column sets).
//!
//! Column indices are exposed as constants so query builders stay readable
//! and immune to off-by-one drift.

use crate::schema::Schema;
use crate::value::ColumnType::{Date, Float, Int, Str};

/// `region(r_regionkey, r_name, r_comment)`
pub fn region() -> Schema {
    Schema::new(&[("r_regionkey", Int), ("r_name", Str), ("r_comment", Str)])
}

/// `nation(n_nationkey, n_name, n_regionkey, n_comment)`
pub fn nation() -> Schema {
    Schema::new(&[
        ("n_nationkey", Int),
        ("n_name", Str),
        ("n_regionkey", Int),
        ("n_comment", Str),
    ])
}

/// `supplier(...)`
pub fn supplier() -> Schema {
    Schema::new(&[
        ("s_suppkey", Int),
        ("s_name", Str),
        ("s_address", Str),
        ("s_nationkey", Int),
        ("s_phone", Str),
        ("s_acctbal", Float),
        ("s_comment", Str),
    ])
}

/// `customer(...)`
pub fn customer() -> Schema {
    Schema::new(&[
        ("c_custkey", Int),
        ("c_name", Str),
        ("c_address", Str),
        ("c_nationkey", Int),
        ("c_phone", Str),
        ("c_acctbal", Float),
        ("c_mktsegment", Str),
        ("c_comment", Str),
    ])
}

/// `part(...)`
pub fn part() -> Schema {
    Schema::new(&[
        ("p_partkey", Int),
        ("p_name", Str),
        ("p_mfgr", Str),
        ("p_brand", Str),
        ("p_type", Str),
        ("p_size", Int),
        ("p_container", Str),
        ("p_retailprice", Float),
        ("p_comment", Str),
    ])
}

/// `partsupp(...)`
pub fn partsupp() -> Schema {
    Schema::new(&[
        ("ps_partkey", Int),
        ("ps_suppkey", Int),
        ("ps_availqty", Int),
        ("ps_supplycost", Float),
        ("ps_comment", Str),
    ])
}

/// `orders(...)`
pub fn orders() -> Schema {
    Schema::new(&[
        ("o_orderkey", Int),
        ("o_custkey", Int),
        ("o_orderstatus", Str),
        ("o_totalprice", Float),
        ("o_orderdate", Date),
        ("o_orderpriority", Str),
        ("o_clerk", Str),
        ("o_shippriority", Int),
        ("o_comment", Str),
    ])
}

/// `lineitem(...)`
pub fn lineitem() -> Schema {
    Schema::new(&[
        ("l_orderkey", Int),
        ("l_partkey", Int),
        ("l_suppkey", Int),
        ("l_linenumber", Int),
        ("l_quantity", Float),
        ("l_extendedprice", Float),
        ("l_discount", Float),
        ("l_tax", Float),
        ("l_returnflag", Str),
        ("l_linestatus", Str),
        ("l_shipdate", Date),
        ("l_commitdate", Date),
        ("l_receiptdate", Date),
        ("l_shipinstruct", Str),
        ("l_shipmode", Str),
        ("l_comment", Str),
    ])
}

/// Column index constants for the `lineitem` table.
#[allow(missing_docs)]
pub mod l {
    pub const ORDERKEY: usize = 0;
    pub const PARTKEY: usize = 1;
    pub const SUPPKEY: usize = 2;
    pub const LINENUMBER: usize = 3;
    pub const QUANTITY: usize = 4;
    pub const EXTENDEDPRICE: usize = 5;
    pub const DISCOUNT: usize = 6;
    pub const TAX: usize = 7;
    pub const RETURNFLAG: usize = 8;
    pub const LINESTATUS: usize = 9;
    pub const SHIPDATE: usize = 10;
    pub const COMMITDATE: usize = 11;
    pub const RECEIPTDATE: usize = 12;
    pub const SHIPINSTRUCT: usize = 13;
    pub const SHIPMODE: usize = 14;
    pub const COMMENT: usize = 15;
    pub const WIDTH: usize = 16;
}

/// Column index constants for the `orders` table.
#[allow(missing_docs)]
pub mod o {
    pub const ORDERKEY: usize = 0;
    pub const CUSTKEY: usize = 1;
    pub const ORDERSTATUS: usize = 2;
    pub const TOTALPRICE: usize = 3;
    pub const ORDERDATE: usize = 4;
    pub const ORDERPRIORITY: usize = 5;
    pub const CLERK: usize = 6;
    pub const SHIPPRIORITY: usize = 7;
    pub const COMMENT: usize = 8;
    pub const WIDTH: usize = 9;
}

/// Column index constants for the `customer` table.
#[allow(missing_docs)]
pub mod c {
    pub const CUSTKEY: usize = 0;
    pub const NAME: usize = 1;
    pub const ADDRESS: usize = 2;
    pub const NATIONKEY: usize = 3;
    pub const PHONE: usize = 4;
    pub const ACCTBAL: usize = 5;
    pub const MKTSEGMENT: usize = 6;
    pub const COMMENT: usize = 7;
    pub const WIDTH: usize = 8;
}

/// Column index constants for the `part` table.
#[allow(missing_docs)]
pub mod p {
    pub const PARTKEY: usize = 0;
    pub const NAME: usize = 1;
    pub const MFGR: usize = 2;
    pub const BRAND: usize = 3;
    pub const TYPE: usize = 4;
    pub const SIZE: usize = 5;
    pub const CONTAINER: usize = 6;
    pub const RETAILPRICE: usize = 7;
    pub const COMMENT: usize = 8;
    pub const WIDTH: usize = 9;
}

/// Column index constants for the `partsupp` table.
#[allow(missing_docs)]
pub mod ps {
    pub const PARTKEY: usize = 0;
    pub const SUPPKEY: usize = 1;
    pub const AVAILQTY: usize = 2;
    pub const SUPPLYCOST: usize = 3;
    pub const COMMENT: usize = 4;
    pub const WIDTH: usize = 5;
}

/// Column index constants for the `supplier` table.
#[allow(missing_docs)]
pub mod s {
    pub const SUPPKEY: usize = 0;
    pub const NAME: usize = 1;
    pub const ADDRESS: usize = 2;
    pub const NATIONKEY: usize = 3;
    pub const PHONE: usize = 4;
    pub const ACCTBAL: usize = 5;
    pub const COMMENT: usize = 6;
    pub const WIDTH: usize = 7;
}

/// Column index constants for the `nation` table.
#[allow(missing_docs)]
pub mod n {
    pub const NATIONKEY: usize = 0;
    pub const NAME: usize = 1;
    pub const REGIONKEY: usize = 2;
    pub const COMMENT: usize = 3;
    pub const WIDTH: usize = 4;
}

/// Column index constants for the `region` table.
#[allow(missing_docs)]
pub mod r {
    pub const REGIONKEY: usize = 0;
    pub const NAME: usize = 1;
    pub const COMMENT: usize = 2;
    pub const WIDTH: usize = 3;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_constants_match_schemas() {
        assert_eq!(lineitem().len(), l::WIDTH);
        assert_eq!(lineitem().index_of("l_shipdate").unwrap(), l::SHIPDATE);
        assert_eq!(orders().len(), o::WIDTH);
        assert_eq!(orders().index_of("o_orderdate").unwrap(), o::ORDERDATE);
        assert_eq!(customer().len(), c::WIDTH);
        assert_eq!(customer().index_of("c_mktsegment").unwrap(), c::MKTSEGMENT);
        assert_eq!(part().len(), p::WIDTH);
        assert_eq!(part().index_of("p_container").unwrap(), p::CONTAINER);
        assert_eq!(partsupp().len(), ps::WIDTH);
        assert_eq!(supplier().len(), s::WIDTH);
        assert_eq!(nation().len(), n::WIDTH);
        assert_eq!(region().len(), r::WIDTH);
    }
}
