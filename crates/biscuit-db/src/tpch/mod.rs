//! TPC-H on the mini engine: standard schemas, a dbgen-style generator,
//! and simplified-but-faithful forms of all 22 queries (paper §V-C, Fig. 10).

pub mod gen;
pub mod queries;
pub mod schema;

pub use gen::TpchData;
pub use queries::{all_queries, TpchQuery};
