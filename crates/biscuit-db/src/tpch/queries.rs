//! All 22 TPC-H queries in simplified-but-faithful form.
//!
//! Each query keeps its defining filter predicates (the inputs to the NDP
//! offload decision), its join structure, and its aggregation shape.
//! Queries the standard expresses with subqueries run as multiple engine
//! phases composed in host code, as MariaDB materializes them. Semantics
//! simplifications (documented per query): no NULLs, `COUNT(DISTINCT)`
//! computed host-side, `EXISTS` turned into joins or host-side set tests.

use biscuit_host::HostLoad;
use biscuit_sim::Ctx;

use crate::engine::{Db, QueryOutput, QueryStats};
use crate::error::DbResult;
use crate::expr::{ArithOp, CmpOp, Expr};
use crate::spec::{AggFun, ExecMode, OrderKey, SelectSpec};
use crate::value::{Row, Value};

use super::schema::{c, l, n, o, p, ps, r, s};

type Runner = fn(&Db, &Ctx, ExecMode, HostLoad) -> DbResult<(Vec<Row>, Vec<String>)>;

/// One TPC-H query, runnable in either mode.
#[derive(Clone)]
pub struct TpchQuery {
    /// Query number, 1..=22.
    pub id: usize,
    /// Short description.
    pub description: &'static str,
    runner: Runner,
}

impl std::fmt::Debug for TpchQuery {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Q{} ({})", self.id, self.description)
    }
}

impl TpchQuery {
    /// Executes the query, measuring total virtual time, link traffic, and
    /// device scan volume across all of its phases.
    ///
    /// # Errors
    ///
    /// Propagates engine errors.
    pub fn run(&self, db: &Db, ctx: &Ctx, mode: ExecMode, load: HostLoad) -> DbResult<QueryOutput> {
        if mode == ExecMode::Biscuit {
            db.prepare(ctx)?;
        }
        let t0 = ctx.now();
        let link0 = db.ssd().link().bytes_to_host();
        let dev0 = db.ssd().device().stats().pages_scanned.get();
        let (rows, mut offloaded) = (self.runner)(db, ctx, mode, load)?;
        offloaded.sort();
        offloaded.dedup();
        let stats = QueryStats {
            offloaded_tables: offloaded,
            link_bytes_to_host: db.ssd().link().bytes_to_host() - link0,
            device_pages_scanned: db.ssd().device().stats().pages_scanned.get() - dev0,
            rows_out: rows.len(),
            elapsed: ctx.now() - t0,
        };
        Ok(QueryOutput { rows, stats })
    }
}

/// The full suite, in query order.
pub fn all_queries() -> Vec<TpchQuery> {
    vec![
        TpchQuery {
            id: 1,
            description: "pricing summary report",
            runner: q1,
        },
        TpchQuery {
            id: 2,
            description: "minimum cost supplier",
            runner: q2,
        },
        TpchQuery {
            id: 3,
            description: "shipping priority",
            runner: q3,
        },
        TpchQuery {
            id: 4,
            description: "order priority checking",
            runner: q4,
        },
        TpchQuery {
            id: 5,
            description: "local supplier volume",
            runner: q5,
        },
        TpchQuery {
            id: 6,
            description: "forecasting revenue change",
            runner: q6,
        },
        TpchQuery {
            id: 7,
            description: "volume shipping",
            runner: q7,
        },
        TpchQuery {
            id: 8,
            description: "national market share",
            runner: q8,
        },
        TpchQuery {
            id: 9,
            description: "product type profit",
            runner: q9,
        },
        TpchQuery {
            id: 10,
            description: "returned item reporting",
            runner: q10,
        },
        TpchQuery {
            id: 11,
            description: "important stock identification",
            runner: q11,
        },
        TpchQuery {
            id: 12,
            description: "shipping modes and priority",
            runner: q12,
        },
        TpchQuery {
            id: 13,
            description: "customer distribution",
            runner: q13,
        },
        TpchQuery {
            id: 14,
            description: "promotion effect",
            runner: q14,
        },
        TpchQuery {
            id: 15,
            description: "top supplier",
            runner: q15,
        },
        TpchQuery {
            id: 16,
            description: "parts/supplier relationship",
            runner: q16,
        },
        TpchQuery {
            id: 17,
            description: "small-quantity-order revenue",
            runner: q17,
        },
        TpchQuery {
            id: 18,
            description: "large volume customer",
            runner: q18,
        },
        TpchQuery {
            id: 19,
            description: "discounted revenue",
            runner: q19,
        },
        TpchQuery {
            id: 20,
            description: "potential part promotion",
            runner: q20,
        },
        TpchQuery {
            id: 21,
            description: "suppliers who kept orders waiting",
            runner: q21,
        },
        TpchQuery {
            id: 22,
            description: "global sales opportunity",
            runner: q22,
        },
    ]
}

// ---------- small builders ----------

fn d(s: &str) -> Value {
    Value::date(s)
}

fn fl(x: f64) -> Value {
    Value::Float(x)
}

fn st(x: &str) -> Value {
    Value::Str(x.to_owned())
}

fn col(off: usize, i: usize) -> Expr {
    Expr::Col(off + i)
}

fn lit(v: Value) -> Expr {
    Expr::Lit(v)
}

fn mul(a: Expr, b: Expr) -> Expr {
    Expr::Arith(ArithOp::Mul, Box::new(a), Box::new(b))
}

fn sub(a: Expr, b: Expr) -> Expr {
    Expr::Arith(ArithOp::Sub, Box::new(a), Box::new(b))
}

fn add(a: Expr, b: Expr) -> Expr {
    Expr::Arith(ArithOp::Add, Box::new(a), Box::new(b))
}

fn between(off: usize, i: usize, lo: Value, hi: Value) -> Expr {
    Expr::Between(Box::new(col(off, i)), lo, hi)
}

fn eq(off: usize, i: usize, v: Value) -> Expr {
    Expr::col_eq(off + i, v)
}

fn cmp(off: usize, i: usize, op: CmpOp, v: Value) -> Expr {
    Expr::col_cmp(off + i, op, v)
}

fn like(off: usize, i: usize, pat: &str) -> Expr {
    Expr::Like(Box::new(col(off, i)), pat.to_owned())
}

/// `l_extendedprice * (1 - l_discount)` at lineitem offset `off`.
fn revenue(off: usize) -> Expr {
    mul(
        col(off, l::EXTENDEDPRICE),
        sub(lit(fl(1.0)), col(off, l::DISCOUNT)),
    )
}

fn asc(colidx: usize) -> OrderKey {
    OrderKey {
        col: colidx,
        desc: false,
    }
}

fn desc(colidx: usize) -> OrderKey {
    OrderKey {
        col: colidx,
        desc: true,
    }
}

fn run_phase(
    db: &Db,
    ctx: &Ctx,
    spec: &SelectSpec,
    mode: ExecMode,
    load: HostLoad,
    offloaded: &mut Vec<String>,
) -> DbResult<Vec<Row>> {
    let out = db.execute(ctx, spec, mode, load)?;
    offloaded.extend(out.stats.offloaded_tables);
    Ok(out.rows)
}

// ---------- queries ----------

/// Q1: full lineitem scan, wide-range date predicate (`<=` — no pattern
/// keys, never offloaded, matching the paper).
fn q1(db: &Db, ctx: &Ctx, mode: ExecMode, load: HostLoad) -> DbResult<(Vec<Row>, Vec<String>)> {
    let mut spec = SelectSpec::new("q1");
    spec.scan(
        "lineitem",
        Some(cmp(0, l::SHIPDATE, CmpOp::Le, d("1998-09-02"))),
    );
    spec.group_by = vec![col(0, l::RETURNFLAG), col(0, l::LINESTATUS)];
    let charge = mul(revenue(0), add(lit(fl(1.0)), col(0, l::TAX)));
    spec.aggregates = vec![
        (AggFun::Sum, col(0, l::QUANTITY)),
        (AggFun::Sum, col(0, l::EXTENDEDPRICE)),
        (AggFun::Sum, revenue(0)),
        (AggFun::Sum, charge),
        (AggFun::Avg, col(0, l::QUANTITY)),
        (AggFun::Avg, col(0, l::EXTENDEDPRICE)),
        (AggFun::Avg, col(0, l::DISCOUNT)),
        (AggFun::Count, lit(Value::Int(1))),
    ];
    spec.order_by = vec![asc(0), asc(1)];
    let mut off = Vec::new();
    let rows = run_phase(db, ctx, &spec, mode, load, &mut off)?;
    Ok((rows, off))
}

/// Q2: minimum-cost supplier (subquery materialized host-side).
fn q2(db: &Db, ctx: &Ctx, mode: ExecMode, load: HostLoad) -> DbResult<(Vec<Row>, Vec<String>)> {
    let (pp, pss, ss, nn, rr) = (
        0,
        p::WIDTH,
        p::WIDTH + ps::WIDTH,
        p::WIDTH + ps::WIDTH + s::WIDTH,
        p::WIDTH + ps::WIDTH + s::WIDTH + n::WIDTH,
    );
    let mut spec = SelectSpec::new("q2");
    let t_p = spec.scan(
        "part",
        Some(Expr::And(vec![
            eq(pp, p::SIZE, Value::Int(15)),
            like(pp, p::TYPE, "%BRASS"),
        ])),
    );
    let t_ps = spec.scan("partsupp", None);
    let t_s = spec.scan("supplier", None);
    let t_n = spec.scan("nation", None);
    let t_r = spec.scan("region", Some(eq(0, r::NAME, st("EUROPE"))));
    spec.join(t_p, p::PARTKEY, t_ps, ps::PARTKEY);
    spec.join(t_ps, ps::SUPPKEY, t_s, s::SUPPKEY);
    spec.join(t_s, s::NATIONKEY, t_n, n::NATIONKEY);
    spec.join(t_n, n::REGIONKEY, t_r, r::REGIONKEY);
    spec.projection = vec![
        col(ss, s::ACCTBAL),
        col(ss, s::NAME),
        col(nn, n::NAME),
        col(pp, p::PARTKEY),
        col(pp, p::MFGR),
        col(pss, ps::SUPPLYCOST),
    ];
    let _ = rr;
    let mut off = Vec::new();
    let rows = run_phase(db, ctx, &spec, mode, load, &mut off)?;
    // Host: keep only rows at the minimum supply cost per part.
    db.charge_host_bytes(ctx, (rows.len() * 32) as u64, load);
    let mut min_cost: std::collections::HashMap<i64, f64> = Default::default();
    for row in &rows {
        let key = row[3].as_i64().expect("partkey");
        let cost = row[5].as_f64().expect("supplycost");
        min_cost
            .entry(key)
            .and_modify(|m| *m = m.min(cost))
            .or_insert(cost);
    }
    let mut out: Vec<Row> = rows
        .into_iter()
        .filter(|row| {
            let key = row[3].as_i64().expect("partkey");
            let cost = row[5].as_f64().expect("supplycost");
            (cost - min_cost[&key]).abs() < 1e-9
        })
        .map(|mut row| {
            row.truncate(5);
            row
        })
        .collect();
    crate::exec::order_and_limit(&mut out, &[desc(0), asc(2), asc(1), asc(3)], Some(100));
    Ok((out, off))
}

/// Q3: shipping priority.
fn q3(db: &Db, ctx: &Ctx, mode: ExecMode, load: HostLoad) -> DbResult<(Vec<Row>, Vec<String>)> {
    let (cc, oo, ll) = (0, c::WIDTH, c::WIDTH + o::WIDTH);
    let mut spec = SelectSpec::new("q3");
    let t_c = spec.scan("customer", Some(eq(0, c::MKTSEGMENT, st("BUILDING"))));
    let t_o = spec.scan(
        "orders",
        Some(cmp(0, o::ORDERDATE, CmpOp::Lt, d("1995-03-15"))),
    );
    let t_l = spec.scan(
        "lineitem",
        Some(cmp(0, l::SHIPDATE, CmpOp::Gt, d("1995-03-15"))),
    );
    spec.join(t_c, c::CUSTKEY, t_o, o::CUSTKEY);
    spec.join(t_o, o::ORDERKEY, t_l, l::ORDERKEY);
    spec.group_by = vec![
        col(ll, l::ORDERKEY),
        col(oo, o::ORDERDATE),
        col(oo, o::SHIPPRIORITY),
    ];
    spec.aggregates = vec![(AggFun::Sum, revenue(ll))];
    spec.order_by = vec![desc(3), asc(1)];
    spec.limit = Some(10);
    let _ = cc;
    let mut off = Vec::new();
    let rows = run_phase(db, ctx, &spec, mode, load, &mut off)?;
    Ok((rows, off))
}

/// Q4: order priority checking (EXISTS turned into a join + host dedup).
fn q4(db: &Db, ctx: &Ctx, mode: ExecMode, load: HostLoad) -> DbResult<(Vec<Row>, Vec<String>)> {
    let mut spec = SelectSpec::new("q4");
    let t_o = spec.scan(
        "orders",
        Some(between(0, o::ORDERDATE, d("1993-07-01"), d("1993-09-30"))),
    );
    let t_l = spec.scan(
        "lineitem",
        Some(Expr::Cmp(
            CmpOp::Lt,
            Box::new(col(0, l::COMMITDATE)),
            Box::new(col(0, l::RECEIPTDATE)),
        )),
    );
    spec.join(t_o, o::ORDERKEY, t_l, l::ORDERKEY);
    spec.projection = vec![col(0, o::ORDERKEY), col(0, o::ORDERPRIORITY)];
    let mut off = Vec::new();
    let rows = run_phase(db, ctx, &spec, mode, load, &mut off)?;
    // Host: COUNT(DISTINCT o_orderkey) per priority.
    db.charge_host_bytes(ctx, (rows.len() * 24) as u64, load);
    let mut seen = std::collections::HashSet::new();
    let mut counts: std::collections::BTreeMap<String, i64> = Default::default();
    for row in rows {
        let key = row[0].as_i64().expect("orderkey");
        if seen.insert(key) {
            *counts
                .entry(row[1].as_str().expect("priority").to_owned())
                .or_insert(0) += 1;
        }
    }
    let out = counts
        .into_iter()
        .map(|(prio, count)| vec![Value::Str(prio), Value::Int(count)])
        .collect();
    Ok((out, off))
}

/// Q5: local supplier volume.
fn q5(db: &Db, ctx: &Ctx, mode: ExecMode, load: HostLoad) -> DbResult<(Vec<Row>, Vec<String>)> {
    let cc = 0;
    let oo = c::WIDTH;
    let ll = oo + o::WIDTH;
    let ss = ll + l::WIDTH;
    let nn = ss + s::WIDTH;
    let mut spec = SelectSpec::new("q5");
    let t_c = spec.scan("customer", None);
    let t_o = spec.scan(
        "orders",
        Some(between(0, o::ORDERDATE, d("1994-01-01"), d("1994-12-31"))),
    );
    let t_l = spec.scan("lineitem", None);
    let t_s = spec.scan("supplier", None);
    let t_n = spec.scan("nation", None);
    let t_r = spec.scan("region", Some(eq(0, r::NAME, st("ASIA"))));
    spec.join(t_c, c::CUSTKEY, t_o, o::CUSTKEY);
    spec.join(t_o, o::ORDERKEY, t_l, l::ORDERKEY);
    spec.join(t_l, l::SUPPKEY, t_s, s::SUPPKEY);
    spec.join(t_s, s::NATIONKEY, t_n, n::NATIONKEY);
    spec.join(t_n, n::REGIONKEY, t_r, r::REGIONKEY);
    spec.residual = Some(Expr::Cmp(
        CmpOp::Eq,
        Box::new(col(cc, c::NATIONKEY)),
        Box::new(col(ss, s::NATIONKEY)),
    ));
    spec.group_by = vec![col(nn, n::NAME)];
    spec.aggregates = vec![(AggFun::Sum, revenue(ll))];
    spec.order_by = vec![desc(1)];
    let mut off = Vec::new();
    let rows = run_phase(db, ctx, &spec, mode, load, &mut off)?;
    Ok((rows, off))
}

/// Q6: forecasting revenue change (year range + discount + quantity).
fn q6(db: &Db, ctx: &Ctx, mode: ExecMode, load: HostLoad) -> DbResult<(Vec<Row>, Vec<String>)> {
    let mut spec = SelectSpec::new("q6");
    spec.scan(
        "lineitem",
        Some(Expr::And(vec![
            between(0, l::SHIPDATE, d("1994-01-01"), d("1994-12-31")),
            between(0, l::DISCOUNT, fl(0.05), fl(0.07)),
            cmp(0, l::QUANTITY, CmpOp::Lt, fl(24.0)),
        ])),
    );
    spec.aggregates = vec![(
        AggFun::Sum,
        mul(col(0, l::EXTENDEDPRICE), col(0, l::DISCOUNT)),
    )];
    let mut off = Vec::new();
    let rows = run_phase(db, ctx, &spec, mode, load, &mut off)?;
    Ok((rows, off))
}

/// Q7: volume shipping between FRANCE and GERMANY. The two-year date range
/// yields two year keys, but the sampled selectivity (~2/7 of rows) exceeds
/// the threshold, so the planner declines — the paper also reports Q7 as
/// given up.
fn q7(db: &Db, ctx: &Ctx, mode: ExecMode, load: HostLoad) -> DbResult<(Vec<Row>, Vec<String>)> {
    let _ss = 0;
    let ll = s::WIDTH;
    let oo = ll + l::WIDTH;
    let cc = oo + o::WIDTH;
    let n1 = cc + c::WIDTH;
    let n2 = n1 + n::WIDTH;
    let mut spec = SelectSpec::new("q7");
    let t_s = spec.scan("supplier", None);
    let t_l = spec.scan(
        "lineitem",
        Some(between(0, l::SHIPDATE, d("1995-01-01"), d("1996-12-31"))),
    );
    let t_o = spec.scan("orders", None);
    let t_c = spec.scan("customer", None);
    let t_n1 = spec.scan("nation", None);
    let t_n2 = spec.scan("nation", None);
    spec.join(t_s, s::SUPPKEY, t_l, l::SUPPKEY);
    spec.join(t_l, l::ORDERKEY, t_o, o::ORDERKEY);
    spec.join(t_o, o::CUSTKEY, t_c, c::CUSTKEY);
    spec.join(t_s, s::NATIONKEY, t_n1, n::NATIONKEY);
    spec.join(t_c, c::NATIONKEY, t_n2, n::NATIONKEY);
    spec.residual = Some(Expr::Or(vec![
        Expr::And(vec![
            eq(n1, n::NAME, st("FRANCE")),
            eq(n2, n::NAME, st("GERMANY")),
        ]),
        Expr::And(vec![
            eq(n1, n::NAME, st("GERMANY")),
            eq(n2, n::NAME, st("FRANCE")),
        ]),
    ]));
    spec.group_by = vec![
        col(n1, n::NAME),
        col(n2, n::NAME),
        Expr::Year(Box::new(col(ll, l::SHIPDATE))),
    ];
    spec.aggregates = vec![(AggFun::Sum, revenue(ll))];
    spec.order_by = vec![asc(0), asc(1), asc(2)];
    let mut off = Vec::new();
    let rows = run_phase(db, ctx, &spec, mode, load, &mut off)?;
    Ok((rows, off))
}

/// Q8: national market share of BRAZIL within AMERICA for a part type.
fn q8(db: &Db, ctx: &Ctx, mode: ExecMode, load: HostLoad) -> DbResult<(Vec<Row>, Vec<String>)> {
    let _pp = 0;
    let ll = p::WIDTH;
    let oo = ll + l::WIDTH;
    let cc = oo + o::WIDTH;
    let n1 = cc + c::WIDTH;
    let rr = n1 + n::WIDTH;
    let ss = rr + r::WIDTH;
    let n2 = ss + s::WIDTH;
    let mut spec = SelectSpec::new("q8");
    let t_p = spec.scan("part", Some(eq(0, p::TYPE, st("ECONOMY ANODIZED STEEL"))));
    let t_l = spec.scan("lineitem", None);
    let t_o = spec.scan(
        "orders",
        Some(between(0, o::ORDERDATE, d("1995-01-01"), d("1996-12-31"))),
    );
    let t_c = spec.scan("customer", None);
    let t_n1 = spec.scan("nation", None);
    let t_r = spec.scan("region", Some(eq(0, r::NAME, st("AMERICA"))));
    let t_s = spec.scan("supplier", None);
    let t_n2 = spec.scan("nation", None);
    spec.join(t_p, p::PARTKEY, t_l, l::PARTKEY);
    spec.join(t_l, l::ORDERKEY, t_o, o::ORDERKEY);
    spec.join(t_o, o::CUSTKEY, t_c, c::CUSTKEY);
    spec.join(t_c, c::NATIONKEY, t_n1, n::NATIONKEY);
    spec.join(t_n1, n::REGIONKEY, t_r, r::REGIONKEY);
    spec.join(t_l, l::SUPPKEY, t_s, s::SUPPKEY);
    spec.join(t_s, s::NATIONKEY, t_n2, n::NATIONKEY);
    spec.group_by = vec![Expr::Year(Box::new(col(oo, o::ORDERDATE)))];
    spec.aggregates = vec![
        (
            AggFun::Sum,
            Expr::Case(
                Box::new(eq(n2, n::NAME, st("BRAZIL"))),
                Box::new(revenue(ll)),
                Box::new(lit(fl(0.0))),
            ),
        ),
        (AggFun::Sum, revenue(ll)),
    ];
    spec.order_by = vec![asc(0)];
    let mut off = Vec::new();
    let rows = run_phase(db, ctx, &spec, mode, load, &mut off)?;
    // Host: mkt_share = brazil_volume / total_volume.
    let out = rows
        .into_iter()
        .map(|row| {
            let total = row[2].as_f64().unwrap_or(0.0);
            let brazil = row[1].as_f64().unwrap_or(0.0);
            let share = if total == 0.0 { 0.0 } else { brazil / total };
            vec![row[0].clone(), Value::Float(share)]
        })
        .collect();
    Ok((out, off))
}

/// Q9: product type profit measure (parts with `green` in the name).
fn q9(db: &Db, ctx: &Ctx, mode: ExecMode, load: HostLoad) -> DbResult<(Vec<Row>, Vec<String>)> {
    let _pp = 0;
    let ll = p::WIDTH;
    let ss = ll + l::WIDTH;
    let pss = ss + s::WIDTH;
    let oo = pss + ps::WIDTH;
    let nn = oo + o::WIDTH;
    let mut spec = SelectSpec::new("q9");
    let t_p = spec.scan("part", Some(like(0, p::NAME, "%green%")));
    let t_l = spec.scan("lineitem", None);
    let t_s = spec.scan("supplier", None);
    let t_ps = spec.scan("partsupp", None);
    let t_o = spec.scan("orders", None);
    let t_n = spec.scan("nation", None);
    spec.join(t_p, p::PARTKEY, t_l, l::PARTKEY);
    spec.join(t_l, l::SUPPKEY, t_s, s::SUPPKEY);
    spec.join(t_ps, ps::PARTKEY, t_l, l::PARTKEY);
    spec.join(t_ps, ps::SUPPKEY, t_l, l::SUPPKEY);
    spec.join(t_l, l::ORDERKEY, t_o, o::ORDERKEY);
    spec.join(t_s, s::NATIONKEY, t_n, n::NATIONKEY);
    spec.group_by = vec![
        col(nn, n::NAME),
        Expr::Year(Box::new(col(oo, o::ORDERDATE))),
    ];
    spec.aggregates = vec![(
        AggFun::Sum,
        sub(
            revenue(ll),
            mul(col(pss, ps::SUPPLYCOST), col(ll, l::QUANTITY)),
        ),
    )];
    spec.order_by = vec![asc(0), desc(1)];

    let mut off = Vec::new();
    let rows = run_phase(db, ctx, &spec, mode, load, &mut off)?;
    Ok((rows, off))
}

/// Q10: returned item reporting.
fn q10(db: &Db, ctx: &Ctx, mode: ExecMode, load: HostLoad) -> DbResult<(Vec<Row>, Vec<String>)> {
    let cc = 0;
    let oo = c::WIDTH;
    let ll = oo + o::WIDTH;
    let nn = ll + l::WIDTH;
    let mut spec = SelectSpec::new("q10");
    let t_c = spec.scan("customer", None);
    let t_o = spec.scan(
        "orders",
        Some(between(0, o::ORDERDATE, d("1993-10-01"), d("1993-12-31"))),
    );
    let t_l = spec.scan("lineitem", Some(eq(0, l::RETURNFLAG, st("R"))));
    let t_n = spec.scan("nation", None);
    spec.join(t_c, c::CUSTKEY, t_o, o::CUSTKEY);
    spec.join(t_o, o::ORDERKEY, t_l, l::ORDERKEY);
    spec.join(t_c, c::NATIONKEY, t_n, n::NATIONKEY);
    spec.group_by = vec![
        col(cc, c::CUSTKEY),
        col(cc, c::NAME),
        col(cc, c::ACCTBAL),
        col(cc, c::PHONE),
        col(nn, n::NAME),
        col(cc, c::ADDRESS),
    ];
    spec.aggregates = vec![(AggFun::Sum, revenue(ll))];
    spec.order_by = vec![desc(6)];
    spec.limit = Some(20);
    let mut off = Vec::new();
    let rows = run_phase(db, ctx, &spec, mode, load, &mut off)?;
    Ok((rows, off))
}

/// Q11: important stock identification (GERMANY; threshold fraction
/// computed host-side).
fn q11(db: &Db, ctx: &Ctx, mode: ExecMode, load: HostLoad) -> DbResult<(Vec<Row>, Vec<String>)> {
    let pss = 0;
    let ss = ps::WIDTH;
    let mut spec = SelectSpec::new("q11");
    let t_ps = spec.scan("partsupp", None);
    let t_s = spec.scan("supplier", None);
    let t_n = spec.scan("nation", Some(eq(0, n::NAME, st("GERMANY"))));
    spec.join(t_ps, ps::SUPPKEY, t_s, s::SUPPKEY);
    spec.join(t_s, s::NATIONKEY, t_n, n::NATIONKEY);
    spec.group_by = vec![col(pss, ps::PARTKEY)];
    spec.aggregates = vec![(
        AggFun::Sum,
        mul(col(pss, ps::SUPPLYCOST), col(pss, ps::AVAILQTY)),
    )];
    let _ = ss;
    let mut off = Vec::new();
    let rows = run_phase(db, ctx, &spec, mode, load, &mut off)?;
    db.charge_host_bytes(ctx, (rows.len() * 16) as u64, load);
    let total: f64 = rows.iter().filter_map(|r| r[1].as_f64()).sum();
    let threshold = total * 0.0001;
    let mut out: Vec<Row> = rows
        .into_iter()
        .filter(|r| r[1].as_f64().unwrap_or(0.0) > threshold)
        .collect();
    crate::exec::order_and_limit(&mut out, &[desc(1)], None);
    Ok((out, off))
}

/// Q12: shipping modes and order priority. `l_shipmode IN (MAIL, SHIP)`
/// selects ~2/7 of rows — sampled selectivity above the threshold, so the
/// planner declines the offload (one of the paper's six sampling rejects).
fn q12(db: &Db, ctx: &Ctx, mode: ExecMode, load: HostLoad) -> DbResult<(Vec<Row>, Vec<String>)> {
    let oo = 0;
    let ll = o::WIDTH;
    let mut spec = SelectSpec::new("q12");
    let t_o = spec.scan("orders", None);
    let t_l = spec.scan(
        "lineitem",
        Some(Expr::And(vec![
            Expr::InList(Box::new(col(0, l::SHIPMODE)), vec![st("MAIL"), st("SHIP")]),
            between(0, l::RECEIPTDATE, d("1994-01-01"), d("1994-12-31")),
            Expr::Cmp(
                CmpOp::Lt,
                Box::new(col(0, l::COMMITDATE)),
                Box::new(col(0, l::RECEIPTDATE)),
            ),
            Expr::Cmp(
                CmpOp::Lt,
                Box::new(col(0, l::SHIPDATE)),
                Box::new(col(0, l::COMMITDATE)),
            ),
        ])),
    );
    spec.join(t_o, o::ORDERKEY, t_l, l::ORDERKEY);
    let high = Expr::InList(
        Box::new(col(oo, o::ORDERPRIORITY)),
        vec![st("1-URGENT"), st("2-HIGH")],
    );
    spec.group_by = vec![col(ll, l::SHIPMODE)];
    spec.aggregates = vec![
        (
            AggFun::Sum,
            Expr::Case(
                Box::new(high.clone()),
                Box::new(lit(fl(1.0))),
                Box::new(lit(fl(0.0))),
            ),
        ),
        (
            AggFun::Sum,
            Expr::Case(
                Box::new(high),
                Box::new(lit(fl(0.0))),
                Box::new(lit(fl(1.0))),
            ),
        ),
    ];
    spec.order_by = vec![asc(0)];
    let mut off = Vec::new();
    let rows = run_phase(db, ctx, &spec, mode, load, &mut off)?;
    Ok((rows, off))
}

/// Q13: customer order-count distribution (`NOT LIKE` — no offload, as in
/// the paper). Outer join computed host-side.
fn q13(db: &Db, ctx: &Ctx, mode: ExecMode, load: HostLoad) -> DbResult<(Vec<Row>, Vec<String>)> {
    let mut off = Vec::new();
    let mut orders_spec = SelectSpec::new("q13-orders");
    orders_spec.scan(
        "orders",
        Some(Expr::NotLike(
            Box::new(col(0, o::COMMENT)),
            "%special%requests%".to_owned(),
        )),
    );
    orders_spec.projection = vec![col(0, o::CUSTKEY)];
    let order_rows = run_phase(db, ctx, &orders_spec, mode, load, &mut off)?;

    let mut cust_spec = SelectSpec::new("q13-customer");
    cust_spec.scan("customer", None);
    cust_spec.projection = vec![col(0, c::CUSTKEY)];
    let cust_rows = run_phase(db, ctx, &cust_spec, mode, load, &mut off)?;

    db.charge_host_bytes(
        ctx,
        ((order_rows.len() + cust_rows.len()) * 16) as u64,
        load,
    );
    let mut per_customer: std::collections::HashMap<i64, i64> = Default::default();
    for row in &cust_rows {
        per_customer.insert(row[0].as_i64().expect("custkey"), 0);
    }
    for row in &order_rows {
        if let Some(count) = per_customer.get_mut(&row[0].as_i64().expect("custkey")) {
            *count += 1;
        }
    }
    let mut dist: std::collections::HashMap<i64, i64> = Default::default();
    for &count in per_customer.values() {
        *dist.entry(count).or_insert(0) += 1;
    }
    let mut out: Vec<Row> = dist
        .into_iter()
        .map(|(count, custdist)| vec![Value::Int(count), Value::Int(custdist)])
        .collect();
    crate::exec::order_and_limit(&mut out, &[desc(1), desc(0)], None);
    Ok((out, off))
}

/// Q14: promotion effect — the paper's star offload (month-range key on
/// lineitem; filtered table first in the join order).
fn q14(db: &Db, ctx: &Ctx, mode: ExecMode, load: HostLoad) -> DbResult<(Vec<Row>, Vec<String>)> {
    let ll = 0;
    let pp = l::WIDTH;
    let mut spec = SelectSpec::new("q14");
    let t_l = spec.scan(
        "lineitem",
        Some(between(0, l::SHIPDATE, d("1995-09-01"), d("1995-09-30"))),
    );
    let t_p = spec.scan("part", None);
    spec.join(t_l, l::PARTKEY, t_p, p::PARTKEY);
    spec.aggregates = vec![
        (
            AggFun::Sum,
            Expr::Case(
                Box::new(like(pp, p::TYPE, "PROMO%")),
                Box::new(revenue(ll)),
                Box::new(lit(fl(0.0))),
            ),
        ),
        (AggFun::Sum, revenue(ll)),
    ];
    let mut off = Vec::new();
    let rows = run_phase(db, ctx, &spec, mode, load, &mut off)?;
    let promo = rows[0][0].as_f64().unwrap_or(0.0);
    let total = rows[0][1].as_f64().unwrap_or(0.0);
    let pct = if total == 0.0 {
        0.0
    } else {
        100.0 * promo / total
    };
    Ok((vec![vec![Value::Float(pct)]], off))
}

/// Q15: top supplier (revenue view materialized host-side).
fn q15(db: &Db, ctx: &Ctx, mode: ExecMode, load: HostLoad) -> DbResult<(Vec<Row>, Vec<String>)> {
    let mut off = Vec::new();
    let mut rev_spec = SelectSpec::new("q15-revenue");
    rev_spec.scan(
        "lineitem",
        Some(between(0, l::SHIPDATE, d("1996-01-01"), d("1996-03-31"))),
    );
    rev_spec.group_by = vec![col(0, l::SUPPKEY)];
    rev_spec.aggregates = vec![(AggFun::Sum, revenue(0))];
    let rev = run_phase(db, ctx, &rev_spec, mode, load, &mut off)?;

    db.charge_host_bytes(ctx, (rev.len() * 16) as u64, load);
    let max_rev = rev
        .iter()
        .filter_map(|r| r[1].as_f64())
        .fold(0.0_f64, f64::max);
    let winners: std::collections::HashMap<i64, f64> = rev
        .iter()
        .filter(|r| (r[1].as_f64().unwrap_or(0.0) - max_rev).abs() < 1e-6)
        .map(|r| (r[0].as_i64().expect("suppkey"), r[1].as_f64().expect("rev")))
        .collect();

    let mut supp_spec = SelectSpec::new("q15-supplier");
    supp_spec.scan("supplier", None);
    supp_spec.projection = vec![
        col(0, s::SUPPKEY),
        col(0, s::NAME),
        col(0, s::ADDRESS),
        col(0, s::PHONE),
    ];
    let supp = run_phase(db, ctx, &supp_spec, mode, load, &mut off)?;
    let mut out: Vec<Row> = supp
        .into_iter()
        .filter_map(|row| {
            let key = row[0].as_i64().expect("suppkey");
            winners.get(&key).map(|&r| {
                let mut row = row;
                row.push(Value::Float(r));
                row
            })
        })
        .collect();
    crate::exec::order_and_limit(&mut out, &[asc(0)], None);
    Ok((out, off))
}

/// Q16: parts/supplier relationship (NOT predicates — no offload).
fn q16(db: &Db, ctx: &Ctx, mode: ExecMode, load: HostLoad) -> DbResult<(Vec<Row>, Vec<String>)> {
    let pss = 0;
    let pp = ps::WIDTH;
    let mut spec = SelectSpec::new("q16");
    let t_ps = spec.scan("partsupp", None);
    let t_p = spec.scan(
        "part",
        Some(Expr::And(vec![
            Expr::Not(Box::new(eq(0, p::BRAND, st("Brand#45")))),
            Expr::NotLike(Box::new(col(0, p::TYPE)), "MEDIUM POLISHED%".to_owned()),
            Expr::InList(
                Box::new(col(0, p::SIZE)),
                [49, 14, 23, 45, 19, 3, 36, 9]
                    .into_iter()
                    .map(Value::Int)
                    .collect(),
            ),
        ])),
    );
    spec.join(t_ps, ps::PARTKEY, t_p, p::PARTKEY);
    spec.projection = vec![
        col(pp, p::BRAND),
        col(pp, p::TYPE),
        col(pp, p::SIZE),
        col(pss, ps::SUPPKEY),
    ];
    let mut off = Vec::new();
    let rows = run_phase(db, ctx, &spec, mode, load, &mut off)?;
    // Host: COUNT(DISTINCT ps_suppkey) per (brand, type, size).
    db.charge_host_bytes(ctx, (rows.len() * 32) as u64, load);
    let mut groups: std::collections::HashMap<String, std::collections::HashSet<i64>> =
        Default::default();
    let mut reps: std::collections::HashMap<String, Row> = Default::default();
    for row in rows {
        let gkey = crate::exec::key_of(&row[..3]);
        groups
            .entry(gkey.clone())
            .or_default()
            .insert(row[3].as_i64().expect("suppkey"));
        reps.entry(gkey).or_insert_with(|| row[..3].to_vec());
    }
    let mut out: Vec<Row> = reps
        .into_iter()
        .map(|(gkey, mut row)| {
            row.push(Value::Int(groups[&gkey].len() as i64));
            row
        })
        .collect();
    crate::exec::order_and_limit(&mut out, &[desc(3), asc(0), asc(1), asc(2)], None);
    Ok((out, off))
}

/// Q17: small-quantity-order revenue (per-part average computed host-side).
fn q17(db: &Db, ctx: &Ctx, mode: ExecMode, load: HostLoad) -> DbResult<(Vec<Row>, Vec<String>)> {
    let ll = 0;
    let pp = l::WIDTH;
    let mut spec = SelectSpec::new("q17");
    let t_l = spec.scan("lineitem", None);
    let t_p = spec.scan(
        "part",
        Some(Expr::And(vec![
            eq(0, p::BRAND, st("Brand#23")),
            eq(0, p::CONTAINER, st("MED BOX")),
        ])),
    );
    spec.join(t_l, l::PARTKEY, t_p, p::PARTKEY);
    spec.projection = vec![
        col(pp, p::PARTKEY),
        col(ll, l::QUANTITY),
        col(ll, l::EXTENDEDPRICE),
    ];
    let mut off = Vec::new();
    let rows = run_phase(db, ctx, &spec, mode, load, &mut off)?;
    db.charge_host_bytes(ctx, (rows.len() * 24) as u64, load);
    let mut sums: std::collections::HashMap<i64, (f64, u64)> = Default::default();
    for row in &rows {
        let e = sums
            .entry(row[0].as_i64().expect("partkey"))
            .or_insert((0.0, 0));
        e.0 += row[1].as_f64().unwrap_or(0.0);
        e.1 += 1;
    }
    let total: f64 = rows
        .iter()
        .filter(|row| {
            let (sum, count) = sums[&row[0].as_i64().expect("partkey")];
            let avg = sum / count as f64;
            row[1].as_f64().unwrap_or(0.0) < 0.2 * avg
        })
        .filter_map(|row| row[2].as_f64())
        .sum();
    Ok((vec![vec![Value::Float(total / 7.0)]], off))
}

/// Q18: large volume customers (HAVING sum(qty) > threshold, host-joined).
fn q18(db: &Db, ctx: &Ctx, mode: ExecMode, load: HostLoad) -> DbResult<(Vec<Row>, Vec<String>)> {
    let mut off = Vec::new();
    let mut qty_spec = SelectSpec::new("q18-qty");
    qty_spec.scan("lineitem", None);
    qty_spec.group_by = vec![col(0, l::ORDERKEY)];
    qty_spec.aggregates = vec![(AggFun::Sum, col(0, l::QUANTITY))];
    let qty = run_phase(db, ctx, &qty_spec, mode, load, &mut off)?;
    db.charge_host_bytes(ctx, (qty.len() * 16) as u64, load);
    let big: std::collections::HashMap<i64, f64> = qty
        .into_iter()
        .filter(|r| r[1].as_f64().unwrap_or(0.0) > 300.0)
        .map(|r| {
            (
                r[0].as_i64().expect("orderkey"),
                r[1].as_f64().expect("qty"),
            )
        })
        .collect();

    let oo = 0;
    let cc = o::WIDTH;
    let mut join_spec = SelectSpec::new("q18-join");
    let t_o = join_spec.scan("orders", None);
    let t_c = join_spec.scan("customer", None);
    join_spec.join(t_o, o::CUSTKEY, t_c, c::CUSTKEY);
    join_spec.projection = vec![
        col(cc, c::NAME),
        col(cc, c::CUSTKEY),
        col(oo, o::ORDERKEY),
        col(oo, o::ORDERDATE),
        col(oo, o::TOTALPRICE),
    ];
    let joined = run_phase(db, ctx, &join_spec, mode, load, &mut off)?;
    db.charge_host_bytes(ctx, (joined.len() * 16) as u64, load);
    let mut out: Vec<Row> = joined
        .into_iter()
        .filter_map(|mut row| {
            let key = row[2].as_i64().expect("orderkey");
            big.get(&key).map(|&q| {
                row.push(Value::Float(q));
                row
            })
        })
        .collect();
    crate::exec::order_and_limit(&mut out, &[desc(4), asc(3)], Some(100));
    Ok((out, off))
}

/// Q19: discounted revenue (three brand/container/quantity branches).
fn q19(db: &Db, ctx: &Ctx, mode: ExecMode, load: HostLoad) -> DbResult<(Vec<Row>, Vec<String>)> {
    let ll = 0;
    let pp = l::WIDTH;
    let branch = |brand: &str, containers: [&str; 4], qlo: f64, qhi: f64, smax: i64| {
        Expr::And(vec![
            eq(pp, p::BRAND, st(brand)),
            Expr::InList(
                Box::new(col(pp, p::CONTAINER)),
                containers.iter().map(|x| st(x)).collect(),
            ),
            between(ll, l::QUANTITY, fl(qlo), fl(qhi)),
            cmp(pp, p::SIZE, CmpOp::Le, Value::Int(smax)),
            cmp(pp, p::SIZE, CmpOp::Ge, Value::Int(1)),
        ])
    };
    let mut spec = SelectSpec::new("q19");
    let t_l = spec.scan(
        "lineitem",
        Some(Expr::And(vec![
            Expr::InList(
                Box::new(col(0, l::SHIPMODE)),
                vec![st("AIR"), st("REG AIR")],
            ),
            eq(0, l::SHIPINSTRUCT, st("DELIVER IN PERSON")),
        ])),
    );
    let t_p = spec.scan(
        "part",
        Some(Expr::InList(
            Box::new(col(0, p::BRAND)),
            vec![st("Brand#12"), st("Brand#23"), st("Brand#34")],
        )),
    );
    spec.join(t_l, l::PARTKEY, t_p, p::PARTKEY);
    spec.residual = Some(Expr::Or(vec![
        branch(
            "Brand#12",
            ["SM CASE", "SM BOX", "SM PACK", "SM PKG"],
            1.0,
            11.0,
            5,
        ),
        branch(
            "Brand#23",
            ["MED BAG", "MED BOX", "MED PKG", "MED PACK"],
            10.0,
            20.0,
            10,
        ),
        branch(
            "Brand#34",
            ["LG CASE", "LG BOX", "LG PACK", "LG PKG"],
            20.0,
            30.0,
            15,
        ),
    ]));
    spec.aggregates = vec![(AggFun::Sum, revenue(ll))];
    let mut off = Vec::new();
    let rows = run_phase(db, ctx, &spec, mode, load, &mut off)?;
    Ok((rows, off))
}

/// Q20: potential part promotion (forest parts, 1994 shipments, CANADA).
fn q20(db: &Db, ctx: &Ctx, mode: ExecMode, load: HostLoad) -> DbResult<(Vec<Row>, Vec<String>)> {
    let mut off = Vec::new();
    let mut part_spec = SelectSpec::new("q20-part");
    part_spec.scan("part", Some(like(0, p::NAME, "forest%")));
    part_spec.projection = vec![col(0, p::PARTKEY)];
    let parts = run_phase(db, ctx, &part_spec, mode, load, &mut off)?;
    let forest: std::collections::HashSet<i64> = parts
        .iter()
        .map(|r| r[0].as_i64().expect("partkey"))
        .collect();

    let mut qty_spec = SelectSpec::new("q20-qty");
    qty_spec.scan(
        "lineitem",
        Some(between(0, l::SHIPDATE, d("1994-01-01"), d("1994-12-31"))),
    );
    qty_spec.group_by = vec![col(0, l::PARTKEY), col(0, l::SUPPKEY)];
    qty_spec.aggregates = vec![(AggFun::Sum, col(0, l::QUANTITY))];
    let qty = run_phase(db, ctx, &qty_spec, mode, load, &mut off)?;
    db.charge_host_bytes(ctx, (qty.len() * 24) as u64, load);
    let shipped: std::collections::HashMap<(i64, i64), f64> = qty
        .into_iter()
        .map(|r| {
            (
                (
                    r[0].as_i64().expect("partkey"),
                    r[1].as_i64().expect("suppkey"),
                ),
                r[2].as_f64().expect("qty"),
            )
        })
        .collect();

    let pss = 0;
    let ss = ps::WIDTH;
    let nn = ss + s::WIDTH;
    let mut sup_spec = SelectSpec::new("q20-supplier");
    let t_ps = sup_spec.scan("partsupp", None);
    let t_s = sup_spec.scan("supplier", None);
    let t_n = sup_spec.scan("nation", Some(eq(0, n::NAME, st("CANADA"))));
    sup_spec.join(t_ps, ps::SUPPKEY, t_s, s::SUPPKEY);
    sup_spec.join(t_s, s::NATIONKEY, t_n, n::NATIONKEY);
    sup_spec.projection = vec![
        col(ss, s::NAME),
        col(ss, s::ADDRESS),
        col(pss, ps::PARTKEY),
        col(pss, ps::SUPPKEY),
        col(pss, ps::AVAILQTY),
    ];
    let _ = nn;
    let sup = run_phase(db, ctx, &sup_spec, mode, load, &mut off)?;
    db.charge_host_bytes(ctx, (sup.len() * 32) as u64, load);
    let mut names: Vec<(String, String)> = sup
        .into_iter()
        .filter(|row| {
            let partkey = row[2].as_i64().expect("partkey");
            if !forest.contains(&partkey) {
                return false;
            }
            let suppkey = row[3].as_i64().expect("suppkey");
            let avail = row[4].as_i64().expect("availqty") as f64;
            let half = shipped.get(&(partkey, suppkey)).copied().unwrap_or(0.0) * 0.5;
            avail > half && half > 0.0
        })
        .map(|row| {
            (
                row[0].as_str().expect("name").to_owned(),
                row[1].as_str().expect("addr").to_owned(),
            )
        })
        .collect();
    names.sort();
    names.dedup();
    let out = names
        .into_iter()
        .map(|(name, addr)| vec![Value::Str(name), Value::Str(addr)])
        .collect();
    Ok((out, off))
}

/// Q21: suppliers who kept orders waiting (simplified: single-lineitem
/// late-delivery join; the multi-supplier EXISTS conditions are dropped).
fn q21(db: &Db, ctx: &Ctx, mode: ExecMode, load: HostLoad) -> DbResult<(Vec<Row>, Vec<String>)> {
    let ss = 0;
    let ll = s::WIDTH;
    let oo = ll + l::WIDTH;
    let mut spec = SelectSpec::new("q21");
    let t_s = spec.scan("supplier", None);
    let t_l = spec.scan(
        "lineitem",
        Some(Expr::Cmp(
            CmpOp::Gt,
            Box::new(col(0, l::RECEIPTDATE)),
            Box::new(col(0, l::COMMITDATE)),
        )),
    );
    let t_o = spec.scan("orders", Some(eq(0, o::ORDERSTATUS, st("F"))));
    let t_n = spec.scan("nation", Some(eq(0, n::NAME, st("SAUDI ARABIA"))));
    spec.join(t_s, s::SUPPKEY, t_l, l::SUPPKEY);
    spec.join(t_l, l::ORDERKEY, t_o, o::ORDERKEY);
    spec.join(t_s, s::NATIONKEY, t_n, n::NATIONKEY);
    spec.group_by = vec![col(ss, s::NAME)];
    spec.aggregates = vec![(AggFun::Count, lit(Value::Int(1)))];
    spec.order_by = vec![desc(1), asc(0)];
    spec.limit = Some(100);
    let _ = oo;
    let mut off = Vec::new();
    let rows = run_phase(db, ctx, &spec, mode, load, &mut off)?;
    Ok((rows, off))
}

/// Q22: global sales opportunity (country-code prefix, anti-join on orders
/// computed host-side).
fn q22(db: &Db, ctx: &Ctx, mode: ExecMode, load: HostLoad) -> DbResult<(Vec<Row>, Vec<String>)> {
    let codes = ["13", "31", "23", "29", "30", "18", "17"];
    let mut off = Vec::new();
    let mut cust_spec = SelectSpec::new("q22-cust");
    cust_spec.scan(
        "customer",
        Some(Expr::And(vec![
            Expr::InList(
                Box::new(Expr::Prefix(Box::new(col(0, c::PHONE)), 2)),
                codes.iter().map(|x| st(x)).collect(),
            ),
            cmp(0, c::ACCTBAL, CmpOp::Gt, fl(0.0)),
        ])),
    );
    cust_spec.projection = vec![
        col(0, c::CUSTKEY),
        Expr::Prefix(Box::new(col(0, c::PHONE)), 2),
        col(0, c::ACCTBAL),
    ];
    let cust = run_phase(db, ctx, &cust_spec, mode, load, &mut off)?;

    let mut orders_spec = SelectSpec::new("q22-orders");
    orders_spec.scan("orders", None);
    orders_spec.projection = vec![col(0, o::CUSTKEY)];
    let orders = run_phase(db, ctx, &orders_spec, mode, load, &mut off)?;
    db.charge_host_bytes(ctx, ((cust.len() + orders.len()) * 16) as u64, load);

    let have_orders: std::collections::HashSet<i64> = orders
        .iter()
        .map(|r| r[0].as_i64().expect("custkey"))
        .collect();
    let avg = {
        let (sum, count) = cust
            .iter()
            .filter_map(|r| r[2].as_f64())
            .fold((0.0, 0u64), |(s, n), x| (s + x, n + 1));
        if count == 0 {
            0.0
        } else {
            sum / count as f64
        }
    };
    let mut groups: std::collections::BTreeMap<String, (i64, f64)> = Default::default();
    for row in cust {
        let key = row[0].as_i64().expect("custkey");
        let bal = row[2].as_f64().expect("acctbal");
        if bal > avg && !have_orders.contains(&key) {
            let code = row[1].as_str().expect("code").to_owned();
            let e = groups.entry(code).or_insert((0, 0.0));
            e.0 += 1;
            e.1 += bal;
        }
    }
    let out = groups
        .into_iter()
        .map(|(code, (count, total))| {
            vec![Value::Str(code), Value::Int(count), Value::Float(total)]
        })
        .collect();
    Ok((out, off))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_is_complete_and_ordered() {
        let qs = all_queries();
        assert_eq!(qs.len(), 22);
        for (i, q) in qs.iter().enumerate() {
            assert_eq!(q.id, i + 1);
        }
    }
}
