//! A dbgen-style deterministic TPC-H data generator.
//!
//! Follows the TPC-H specification's cardinalities and value domains
//! closely enough that the 22 queries exercise their intended predicates
//! (date ranges, brands, containers, segments, `%green%` part names,
//! `special…requests` comments, ...). Everything is seeded, so a given
//! `(scale_factor, seed)` always produces the same database.

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};

use crate::value::{parse_date, Row, Value};

const SEGMENTS: [&str; 5] = [
    "AUTOMOBILE",
    "BUILDING",
    "FURNITURE",
    "MACHINERY",
    "HOUSEHOLD",
];
const PRIORITIES: [&str; 5] = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECI", "5-LOW"];
const SHIPMODES: [&str; 7] = ["REG AIR", "AIR", "RAIL", "SHIP", "TRUCK", "MAIL", "FOB"];
const INSTRUCTIONS: [&str; 4] = [
    "DELIVER IN PERSON",
    "COLLECT COD",
    "NONE",
    "TAKE BACK RETURN",
];
const TYPE_SYLL1: [&str; 6] = ["STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY", "PROMO"];
const TYPE_SYLL2: [&str; 5] = ["ANODIZED", "BURNISHED", "PLATED", "POLISHED", "BRUSHED"];
const TYPE_SYLL3: [&str; 5] = ["TIN", "NICKEL", "BRASS", "STEEL", "COPPER"];
const CONTAINER_SYLL1: [&str; 5] = ["SM", "LG", "MED", "JUMBO", "WRAP"];
const CONTAINER_SYLL2: [&str; 8] = ["CASE", "BOX", "BAG", "JAR", "PKG", "PACK", "CAN", "DRUM"];
/// A 32-word subset of dbgen's P_NAME color list, keeping every color the
/// queries reference (`green`, `forest`, ...).
const COLORS: [&str; 32] = [
    "almond",
    "antique",
    "aquamarine",
    "azure",
    "beige",
    "bisque",
    "black",
    "blanched",
    "blue",
    "blush",
    "brown",
    "burlywood",
    "burnished",
    "chartreuse",
    "chiffon",
    "chocolate",
    "coral",
    "cornflower",
    "cream",
    "cyan",
    "dark",
    "deep",
    "dim",
    "dodger",
    "drab",
    "firebrick",
    "floral",
    "forest",
    "frosted",
    "gainsboro",
    "ghost",
    "green",
];
const COMMENT_WORDS: [&str; 16] = [
    "carefully",
    "quickly",
    "furiously",
    "silent",
    "ironic",
    "final",
    "bold",
    "express",
    "pending",
    "regular",
    "even",
    "special",
    "requests",
    "deposits",
    "accounts",
    "packages",
];
/// The standard 25 nations with their region keys.
const NATIONS: [(&str, i64); 25] = [
    ("ALGERIA", 0),
    ("ARGENTINA", 1),
    ("BRAZIL", 1),
    ("CANADA", 1),
    ("EGYPT", 4),
    ("ETHIOPIA", 0),
    ("FRANCE", 3),
    ("GERMANY", 3),
    ("INDIA", 2),
    ("INDONESIA", 2),
    ("IRAN", 4),
    ("IRAQ", 4),
    ("JAPAN", 2),
    ("JORDAN", 4),
    ("KENYA", 0),
    ("MOROCCO", 0),
    ("MOZAMBIQUE", 0),
    ("PERU", 1),
    ("CHINA", 2),
    ("ROMANIA", 3),
    ("SAUDI ARABIA", 4),
    ("VIETNAM", 2),
    ("RUSSIA", 3),
    ("UNITED KINGDOM", 3),
    ("UNITED STATES", 1),
];
const REGIONS: [&str; 5] = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"];

/// A fully generated TPC-H database (in memory, ready to load).
#[derive(Debug)]
pub struct TpchData {
    /// Scale factor used.
    pub scale_factor: f64,
    /// `region` rows.
    pub region: Vec<Row>,
    /// `nation` rows.
    pub nation: Vec<Row>,
    /// `supplier` rows.
    pub supplier: Vec<Row>,
    /// `customer` rows.
    pub customer: Vec<Row>,
    /// `part` rows.
    pub part: Vec<Row>,
    /// `partsupp` rows.
    pub partsupp: Vec<Row>,
    /// `orders` rows.
    pub orders: Vec<Row>,
    /// `lineitem` rows.
    pub lineitem: Vec<Row>,
}

fn comment(rng: &mut StdRng, words: usize) -> String {
    let mut out = String::new();
    for i in 0..words {
        if i > 0 {
            out.push(' ');
        }
        out.push_str(COMMENT_WORDS.choose(rng).expect("non-empty list"));
    }
    out
}

fn money(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    let cents = rng.random_range((lo * 100.0) as i64..=(hi * 100.0) as i64);
    cents as f64 / 100.0
}

impl TpchData {
    /// Generates a database at `scale_factor` with the given seed.
    ///
    /// Standard cardinalities: lineitem ≈ 6M×SF, orders = 1.5M×SF,
    /// customer = 150k×SF, part = 200k×SF, partsupp = 800k×SF,
    /// supplier = 10k×SF, nation = 25, region = 5.
    pub fn generate(scale_factor: f64, seed: u64) -> TpchData {
        let mut rng = StdRng::seed_from_u64(seed);
        let sf = scale_factor;
        let n_supplier = ((10_000.0 * sf) as usize).max(10);
        let n_customer = ((150_000.0 * sf) as usize).max(150);
        let n_part = ((200_000.0 * sf) as usize).max(200);
        let n_orders = ((1_500_000.0 * sf) as usize).max(1500);

        let start = parse_date("1992-01-01").expect("valid literal");
        let end = parse_date("1998-08-02").expect("valid literal");
        let cutoff = parse_date("1995-06-17").expect("valid literal");

        let region: Vec<Row> = REGIONS
            .iter()
            .enumerate()
            .map(|(i, name)| {
                vec![
                    Value::Int(i as i64),
                    Value::Str((*name).to_owned()),
                    Value::Str(comment(&mut rng, 3)),
                ]
            })
            .collect();

        let nation: Vec<Row> = NATIONS
            .iter()
            .enumerate()
            .map(|(i, &(name, region))| {
                vec![
                    Value::Int(i as i64),
                    Value::Str(name.to_owned()),
                    Value::Int(region),
                    Value::Str(comment(&mut rng, 3)),
                ]
            })
            .collect();

        let supplier: Vec<Row> = (1..=n_supplier)
            .map(|k| {
                vec![
                    Value::Int(k as i64),
                    Value::Str(format!("Supplier#{k:09}")),
                    Value::Str(format!("addr {}", rng.random_range(0..100_000))),
                    Value::Int(rng.random_range(0..25)),
                    Value::Str(format!(
                        "{}-{:03}-{:03}-{:04}",
                        rng.random_range(10..35),
                        rng.random_range(100..1000),
                        rng.random_range(100..1000),
                        rng.random_range(1000..10_000)
                    )),
                    Value::Float(money(&mut rng, -999.99, 9999.99)),
                    Value::Str(comment(&mut rng, 5)),
                ]
            })
            .collect();

        let customer: Vec<Row> = (1..=n_customer)
            .map(|k| {
                vec![
                    Value::Int(k as i64),
                    Value::Str(format!("Customer#{k:09}")),
                    Value::Str(format!("addr {}", rng.random_range(0..100_000))),
                    Value::Int(rng.random_range(0..25)),
                    Value::Str(format!(
                        "{}-{:03}-{:03}-{:04}",
                        rng.random_range(10..35),
                        rng.random_range(100..1000),
                        rng.random_range(100..1000),
                        rng.random_range(1000..10_000)
                    )),
                    Value::Float(money(&mut rng, -999.99, 9999.99)),
                    Value::Str((*SEGMENTS.choose(&mut rng).expect("non-empty")).to_owned()),
                    Value::Str(comment(&mut rng, 6)),
                ]
            })
            .collect();

        let part: Vec<Row> = (1..=n_part)
            .map(|k| {
                let name: Vec<&str> = (0..5)
                    .map(|_| *COLORS.choose(&mut rng).expect("non-empty"))
                    .collect();
                let ty = format!(
                    "{} {} {}",
                    TYPE_SYLL1.choose(&mut rng).expect("non-empty"),
                    TYPE_SYLL2.choose(&mut rng).expect("non-empty"),
                    TYPE_SYLL3.choose(&mut rng).expect("non-empty"),
                );
                let container = format!(
                    "{} {}",
                    CONTAINER_SYLL1.choose(&mut rng).expect("non-empty"),
                    CONTAINER_SYLL2.choose(&mut rng).expect("non-empty"),
                );
                vec![
                    Value::Int(k as i64),
                    Value::Str(name.join(" ")),
                    Value::Str(format!("Manufacturer#{}", rng.random_range(1..=5))),
                    Value::Str(format!(
                        "Brand#{}{}",
                        rng.random_range(1..=5),
                        rng.random_range(1..=5)
                    )),
                    Value::Str(ty),
                    Value::Int(rng.random_range(1..=50)),
                    Value::Str(container),
                    Value::Float(money(&mut rng, 900.0, 2000.0)),
                    Value::Str(comment(&mut rng, 3)),
                ]
            })
            .collect();

        let mut partsupp: Vec<Row> = Vec::with_capacity(n_part * 4);
        for k in 1..=n_part {
            for i in 0..4 {
                let suppkey = ((k + i * (n_supplier / 4).max(1)) % n_supplier) + 1;
                partsupp.push(vec![
                    Value::Int(k as i64),
                    Value::Int(suppkey as i64),
                    Value::Int(rng.random_range(1..=9999)),
                    Value::Float(money(&mut rng, 1.0, 1000.0)),
                    Value::Str(comment(&mut rng, 6)),
                ]);
            }
        }

        let mut orders: Vec<Row> = Vec::with_capacity(n_orders);
        let mut lineitem: Vec<Row> = Vec::new();
        for k in 1..=n_orders {
            let orderdate = rng.random_range(start..=end - 151);
            let custkey = rng.random_range(1..=n_customer as i64);
            let lines = rng.random_range(1..=7);
            let mut totalprice = 0.0;
            let mut any_open = false;
            for line in 1..=lines {
                let shipdate = orderdate + rng.random_range(1..=121);
                let commitdate = orderdate + rng.random_range(30..=90);
                let receiptdate = shipdate + rng.random_range(1..=30);
                let quantity = rng.random_range(1..=50) as f64;
                let extended = money(&mut rng, 900.0, 104_950.0);
                let discount = rng.random_range(0..=10) as f64 / 100.0;
                let tax = rng.random_range(0..=8) as f64 / 100.0;
                let returnflag = if receiptdate <= cutoff {
                    if rng.random_bool(0.5) {
                        "R"
                    } else {
                        "A"
                    }
                } else {
                    "N"
                };
                let linestatus = if shipdate > cutoff { "O" } else { "F" };
                any_open |= linestatus == "O";
                totalprice += extended * (1.0 - discount) * (1.0 + tax);
                lineitem.push(vec![
                    Value::Int(k as i64),
                    Value::Int(rng.random_range(1..=n_part as i64)),
                    Value::Int(rng.random_range(1..=n_supplier as i64)),
                    Value::Int(line),
                    Value::Float(quantity),
                    Value::Float(extended),
                    Value::Float(discount),
                    Value::Float(tax),
                    Value::Str(returnflag.to_owned()),
                    Value::Str(linestatus.to_owned()),
                    Value::Date(shipdate),
                    Value::Date(commitdate),
                    Value::Date(receiptdate),
                    Value::Str((*INSTRUCTIONS.choose(&mut rng).expect("non-empty")).to_owned()),
                    Value::Str((*SHIPMODES.choose(&mut rng).expect("non-empty")).to_owned()),
                    Value::Str(comment(&mut rng, 4)),
                ]);
            }
            let status = if any_open { "O" } else { "F" };
            orders.push(vec![
                Value::Int(k as i64),
                Value::Int(custkey),
                Value::Str(status.to_owned()),
                Value::Float((totalprice * 100.0).round() / 100.0),
                Value::Date(orderdate),
                Value::Str((*PRIORITIES.choose(&mut rng).expect("non-empty")).to_owned()),
                Value::Str(format!("Clerk#{:09}", rng.random_range(1..=1000))),
                Value::Int(0),
                Value::Str(comment(&mut rng, 8)),
            ]);
        }

        TpchData {
            scale_factor: sf,
            region,
            nation,
            supplier,
            customer,
            part,
            partsupp,
            orders,
            lineitem,
        }
    }

    /// Loads every table into a [`crate::Db`] (untimed bulk setup).
    ///
    /// # Errors
    ///
    /// Returns storage errors (e.g. volume too small for the scale factor).
    pub fn load_into(&self, db: &mut crate::Db) -> crate::DbResult<()> {
        use super::schema;
        db.create_table("region", schema::region(), &self.region)?;
        db.create_table("nation", schema::nation(), &self.nation)?;
        db.create_table("supplier", schema::supplier(), &self.supplier)?;
        db.create_table("customer", schema::customer(), &self.customer)?;
        db.create_table("part", schema::part(), &self.part)?;
        db.create_table("partsupp", schema::partsupp(), &self.partsupp)?;
        db.create_table("orders", schema::orders(), &self.orders)?;
        db.create_table("lineitem", schema::lineitem(), &self.lineitem)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tpch::schema::l;

    #[test]
    fn cardinalities_scale() {
        let d = TpchData::generate(0.002, 1);
        assert_eq!(d.region.len(), 5);
        assert_eq!(d.nation.len(), 25);
        assert_eq!(d.orders.len(), 3000);
        assert!(d.lineitem.len() >= 3000); // 1..7 lines per order
        assert_eq!(d.partsupp.len(), d.part.len() * 4);
    }

    #[test]
    fn deterministic_for_seed() {
        let a = TpchData::generate(0.001, 7);
        let b = TpchData::generate(0.001, 7);
        assert_eq!(a.lineitem, b.lineitem);
        assert_eq!(a.orders, b.orders);
        let c = TpchData::generate(0.001, 8);
        assert_ne!(a.lineitem, c.lineitem);
    }

    #[test]
    fn lineitem_date_invariants() {
        let d = TpchData::generate(0.001, 2);
        for row in &d.lineitem {
            let ship = row[l::SHIPDATE].as_i64().unwrap();
            let receipt = row[l::RECEIPTDATE].as_i64().unwrap();
            assert!(receipt > ship, "receipt after ship");
        }
    }

    #[test]
    fn query_relevant_values_present() {
        let d = TpchData::generate(0.005, 3);
        // Q14 needs PROMO part types; Q9 needs green part names; Q13 needs
        // special/requests comments; Q19 needs Brand#xx.
        assert!(d
            .part
            .iter()
            .any(|r| r[4].as_str().unwrap().starts_with("PROMO")));
        assert!(d
            .part
            .iter()
            .any(|r| r[1].as_str().unwrap().contains("green")));
        assert!(d
            .orders
            .iter()
            .any(|r| r[8].as_str().unwrap().contains("special")));
        assert!(d
            .customer
            .iter()
            .any(|r| r[6].as_str().unwrap() == "BUILDING"));
    }

    #[test]
    fn rows_match_schemas() {
        use crate::tpch::schema;
        let d = TpchData::generate(0.001, 4);
        assert!(d
            .lineitem
            .iter()
            .all(|r| r.len() == schema::lineitem().len()));
        assert!(d.orders.iter().all(|r| r.len() == schema::orders().len()));
        assert!(d.part.iter().all(|r| r.len() == schema::part().len()));
    }
}
