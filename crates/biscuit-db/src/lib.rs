//! # biscuit-db — a mini relational engine with Biscuit NDP offload
//!
//! The MariaDB/XtraDB stand-in for the paper's §V-C experiments: heap
//! tables stored in a pattern-matcher-friendly text page format on the
//! simulated SSD, a select-project-join-aggregate executor with block
//! nested-loop joins, and a planner that — in Biscuit mode — detects
//! offload-candidate scans, samples page selectivity, and pushes
//! qualifying filters into a device-side SSDlet over the real framework.
//!
//! - [`value`]/[`schema`]/[`table`] — storage layer.
//! - [`expr`] — expressions, `LIKE`, pattern-key extraction.
//! - [`spec`] — declarative query specs.
//! - [`offload`] — the scan-filter SSDlet module.
//! - [`engine`] — the planner and executor ([`Db`]).
//! - [`tpch`] — TPC-H schema, dbgen-style generator, and all 22 queries.

#![warn(missing_docs)]

pub mod engine;
pub mod error;
pub mod exec;
pub mod expr;
pub mod offload;
pub mod schema;
pub mod spec;
pub mod table;
pub mod tpch;
pub mod value;

pub use engine::{Db, DbConfig, PlanExplain, QueryOutput, QueryStats, ScanExplain};
pub use error::{DbError, DbResult};
pub use expr::{CmpOp, Expr};
pub use schema::{Catalog, Column, Schema};
pub use spec::{AggFun, ExecMode, JoinEdge, OrderKey, SelectSpec, TableScanSpec};
pub use value::{ColumnType, Row, Value};
