//! # biscuit-db — a mini relational engine with Biscuit NDP offload
//!
//! The MariaDB/XtraDB stand-in for the paper's §V-C experiments: heap
//! tables stored in a pattern-matcher-friendly text page format on the
//! simulated SSD, a select-project-join-aggregate executor with block
//! nested-loop joins, and a planner that — in Biscuit mode — detects
//! offload-candidate scans, samples page selectivity, and pushes
//! qualifying filters into a device-side SSDlet over the real framework.
//!
//! ## Crate layout
//!
//! - [`value`]/[`schema`]/[`table`] — storage layer: typed values, table
//!   schemas, and the text page format the pattern matcher can scan.
//! - [`expr`] — expressions, `LIKE`, pattern-key extraction.
//! - [`spec`] — declarative query specs ([`SelectSpec`], [`ExecMode`]).
//! - [`offload`] — the scan-filter SSDlet module deployed to the device.
//! - [`engine`] — the planner and executor ([`Db`]). In Biscuit mode the
//!   planner emits a [`biscuit_sim::trace::TraceEvent::OffloadVerdict`] per
//!   scanned table when the [`Ssd`](biscuit_core::Ssd) carries a tracer
//!   (see `docs/TRACING.md` at the repo root).
//! - [`exec`] — joins, aggregation, ordering.
//! - [`error`] — [`DbError`] / [`DbResult`].
//! - [`array`] — [`ArrayDb`]: the same engine sharded across the drives
//!   of a [`biscuit_host::array::SsdArray`] (see `docs/SCALE.md`).
//! - [`tpch`] — TPC-H schema, dbgen-style generator, and all 22 queries.
//!
//! ## Example: a filtered scan end to end
//!
//! A table is created on the simulated SSD, then queried inside the
//! simulation in conventional (host-scan) mode:
//!
//! ```
//! use biscuit_core::{CoreConfig, Ssd};
//! use biscuit_db::spec::ExecMode;
//! use biscuit_db::{CmpOp, Db, DbConfig, Expr, Schema, SelectSpec, Value};
//! use biscuit_db::value::ColumnType;
//! use biscuit_fs::Fs;
//! use biscuit_host::{HostConfig, HostLoad};
//! use biscuit_sim::Simulation;
//! use biscuit_ssd::{SsdConfig, SsdDevice};
//! use std::sync::Arc;
//!
//! let dev = Arc::new(SsdDevice::new(SsdConfig {
//!     logical_capacity: 64 << 20,
//!     ..SsdConfig::paper_default()
//! }));
//! let ssd = Ssd::new(Fs::format(dev), CoreConfig::paper_default());
//! let mut db = Db::new(ssd, HostConfig::paper_default(), DbConfig::paper_default());
//!
//! let schema = Schema::new(&[("id", ColumnType::Int), ("qty", ColumnType::Int)]);
//! let rows: Vec<Vec<Value>> = (0..100)
//!     .map(|i| vec![Value::Int(i), Value::Int(i * 2)])
//!     .collect();
//! db.create_table("orders", schema, &rows).unwrap();
//!
//! let db = Arc::new(db);
//! let sim = Simulation::new(0);
//! sim.spawn("host", move |ctx| {
//!     let mut spec = SelectSpec::new("small-orders");
//!     spec.scan(
//!         "orders",
//!         Some(Expr::Cmp(
//!             CmpOp::Lt,
//!             Box::new(Expr::Col(1)),
//!             Box::new(Expr::Lit(Value::Int(20))),
//!         )),
//!     );
//!     let out = db.execute(ctx, &spec, ExecMode::Conv, HostLoad::IDLE).unwrap();
//!     assert_eq!(out.rows.len(), 10); // qty = 0, 2, ..., 18
//! });
//! sim.run().assert_quiescent();
//! ```
//!
//! Switch `ExecMode::Conv` to [`ExecMode::Biscuit`](spec::ExecMode::Biscuit)
//! and the planner samples selectivity and — when profitable — deploys the
//! [`offload`] SSDlet so the filter runs next to the flash.

#![warn(missing_docs)]

pub mod array;
pub mod engine;
pub mod error;
pub mod exec;
pub mod expr;
pub mod offload;
pub mod schema;
pub mod spec;
pub mod table;
pub mod tpch;
pub mod value;

pub use array::ArrayDb;
pub use engine::{Db, DbConfig, PlanExplain, QueryOutput, QueryStats, ScanExplain};
pub use error::{DbError, DbResult};
pub use expr::{CmpOp, Expr};
pub use schema::{Catalog, Column, Schema};
pub use spec::{AggFun, ExecMode, JoinEdge, OrderKey, SelectSpec, TableScanSpec};
pub use value::{ColumnType, Row, Value};
