//! Table schemas and the catalog.

use std::collections::HashMap;

use crate::error::{DbError, DbResult};
use crate::value::ColumnType;

/// One column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (TPC-H style, e.g. `l_shipdate`).
    pub name: String,
    /// Data type.
    pub ty: ColumnType,
}

/// A table schema: ordered columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Builds a schema from `(name, type)` pairs.
    pub fn new(cols: &[(&str, ColumnType)]) -> Schema {
        Schema {
            columns: cols
                .iter()
                .map(|&(name, ty)| Column {
                    name: name.to_owned(),
                    ty,
                })
                .collect(),
        }
    }

    /// The columns, in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True for a zero-column schema.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Column index by name.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownColumn`] if absent.
    pub fn index_of(&self, name: &str) -> DbResult<usize> {
        self.columns
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| DbError::UnknownColumn(name.to_owned()))
    }

    /// The column types, in order.
    pub fn types(&self) -> Vec<ColumnType> {
        self.columns.iter().map(|c| c.ty).collect()
    }
}

/// Metadata the engine keeps per table.
#[derive(Debug, Clone)]
pub struct TableMeta {
    /// Table name.
    pub name: String,
    /// Schema.
    pub schema: Schema,
    /// Backing file path on the device filesystem.
    pub file_path: String,
    /// Row count (maintained at load time).
    pub rows: u64,
    /// Page count of the backing file.
    pub pages: u64,
}

/// The database catalog.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: HashMap<String, TableMeta>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a table.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::TableExists`] on duplicate names.
    pub fn register(&mut self, meta: TableMeta) -> DbResult<()> {
        if self.tables.contains_key(&meta.name) {
            return Err(DbError::TableExists(meta.name));
        }
        self.tables.insert(meta.name.clone(), meta);
        Ok(())
    }

    /// Looks up a table.
    ///
    /// # Errors
    ///
    /// Returns [`DbError::UnknownTable`] if absent.
    pub fn table(&self, name: &str) -> DbResult<&TableMeta> {
        self.tables
            .get(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_owned()))
    }

    /// All table names, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_lookup() {
        let s = Schema::new(&[("a", ColumnType::Int), ("b", ColumnType::Str)]);
        assert_eq!(s.index_of("b").unwrap(), 1);
        assert!(matches!(s.index_of("z"), Err(DbError::UnknownColumn(_))));
        assert_eq!(s.types(), vec![ColumnType::Int, ColumnType::Str]);
    }

    #[test]
    fn catalog_rejects_duplicates() {
        let mut c = Catalog::new();
        let meta = TableMeta {
            name: "t".into(),
            schema: Schema::new(&[("a", ColumnType::Int)]),
            file_path: "tbl_t".into(),
            rows: 0,
            pages: 0,
        };
        c.register(meta.clone()).unwrap();
        assert!(matches!(c.register(meta), Err(DbError::TableExists(_))));
        assert!(c.table("t").is_ok());
        assert!(matches!(c.table("u"), Err(DbError::UnknownTable(_))));
    }
}
