//! Table storage: packing rows into flash pages and parsing them back.
//!
//! Rows never span pages (XtraDB-style page-granular layout), so a page can
//! be parsed, filtered, and pattern-matched in isolation — the property the
//! device-side scan SSDlet depends on. Page tails are padded with `~`,
//! a byte that cannot occur inside the `|...|` row framing.

use biscuit_fs::Fs;

use crate::error::{DbError, DbResult};
use crate::schema::{Schema, TableMeta};
use crate::value::{row_from_text, row_to_text, Row};

/// Byte used to fill page tails.
pub const PAD: u8 = b'~';

/// Packs rows into consecutive page images of `page_size` bytes.
///
/// # Errors
///
/// Returns [`DbError::RowTooLarge`] if a serialized row exceeds one page.
pub fn pack_rows<'a, I>(rows: I, page_size: usize) -> DbResult<(Vec<u8>, u64)>
where
    I: IntoIterator<Item = &'a Row>,
{
    let mut out = Vec::new();
    let mut page = Vec::with_capacity(page_size);
    let mut count = 0u64;
    for row in rows {
        let text = row_to_text(row);
        if text.len() > page_size {
            return Err(DbError::RowTooLarge {
                bytes: text.len(),
                page_size,
            });
        }
        if page.len() + text.len() > page_size {
            page.resize(page_size, PAD);
            out.extend_from_slice(&page);
            page.clear();
        }
        page.extend_from_slice(text.as_bytes());
        count += 1;
    }
    if !page.is_empty() {
        page.resize(page_size, PAD);
        out.extend_from_slice(&page);
    }
    Ok((out, count))
}

/// Parses every row out of one page image.
///
/// # Errors
///
/// Returns [`DbError::CorruptRow`] for non-padding content that fails to
/// parse.
pub fn parse_page(schema: &Schema, table: &str, page: &[u8]) -> DbResult<Vec<Row>> {
    let types = schema.types();
    let mut rows = Vec::new();
    for line in page.split(|&b| b == b'\n') {
        let line = std::str::from_utf8(line).map_err(|_| DbError::CorruptRow {
            table: table.to_owned(),
            line: String::from_utf8_lossy(line).into_owned(),
        })?;
        let trimmed = line.trim_end_matches(PAD as char);
        if trimmed.is_empty() {
            continue;
        }
        let row = row_from_text(&types, trimmed).ok_or_else(|| DbError::CorruptRow {
            table: table.to_owned(),
            line: trimmed.to_owned(),
        })?;
        rows.push(row);
    }
    Ok(rows)
}

/// Creates a table file on the volume and bulk-loads rows (untimed; dataset
/// loading happens before experiments start, as in the paper's methodology).
///
/// # Errors
///
/// Returns filesystem or row-size errors.
pub fn create_table(fs: &Fs, name: &str, schema: Schema, rows: &[Row]) -> DbResult<TableMeta> {
    let page_size = fs.device().config().page_size;
    let file_path = format!("tbl_{name}");
    fs.create(&file_path)?;
    let (bytes, count) = pack_rows(rows.iter(), page_size)?;
    fs.append_untimed(&file_path, &bytes)?;
    Ok(TableMeta {
        name: name.to_owned(),
        schema,
        file_path,
        rows: count,
        pages: (bytes.len() / page_size) as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{ColumnType, Value};
    use std::sync::Arc;

    fn schema() -> Schema {
        Schema::new(&[("id", ColumnType::Int), ("name", ColumnType::Str)])
    }

    fn rows(n: usize) -> Vec<Row> {
        (0..n)
            .map(|i| vec![Value::Int(i as i64), Value::Str(format!("name{i}"))])
            .collect()
    }

    #[test]
    fn pack_and_parse_round_trip() {
        let rs = rows(100);
        let (bytes, count) = pack_rows(rs.iter(), 256).unwrap();
        assert_eq!(count, 100);
        assert_eq!(bytes.len() % 256, 0);
        let mut parsed = Vec::new();
        for page in bytes.chunks(256) {
            parsed.extend(parse_page(&schema(), "t", page).unwrap());
        }
        assert_eq!(parsed, rs);
    }

    #[test]
    fn rows_do_not_span_pages() {
        let rs = rows(50);
        let (bytes, _) = pack_rows(rs.iter(), 128).unwrap();
        for page in bytes.chunks(128) {
            // Every page parses independently.
            parse_page(&schema(), "t", page).unwrap();
        }
    }

    #[test]
    fn oversized_row_rejected() {
        let big = [vec![Value::Str("x".repeat(300))]];
        assert!(matches!(
            pack_rows(big.iter(), 128),
            Err(DbError::RowTooLarge { .. })
        ));
    }

    #[test]
    fn corrupt_page_detected() {
        let page = b"|1|ok|\n|borked\n".to_vec();
        assert!(matches!(
            parse_page(&schema(), "t", &page),
            Err(DbError::CorruptRow { .. })
        ));
    }

    #[test]
    fn create_table_registers_geometry() {
        let dev = Arc::new(biscuit_ssd::SsdDevice::new(biscuit_ssd::SsdConfig {
            logical_capacity: 64 << 20,
            ..biscuit_ssd::SsdConfig::paper_default()
        }));
        let fs = Fs::format(dev);
        let meta = create_table(&fs, "demo", schema(), &rows(1000)).unwrap();
        assert_eq!(meta.rows, 1000);
        assert!(meta.pages > 0);
        assert!(fs.exists("tbl_demo"));
    }

    #[test]
    fn empty_table_is_fine() {
        let (bytes, count) = pack_rows([].iter(), 256).unwrap();
        assert!(bytes.is_empty());
        assert_eq!(count, 0);
    }
}
