//! Declarative query specifications (select-project-join-aggregate).
//!
//! The mini engine executes flat SPJA specs: per-table local predicates,
//! equi-join edges, an optional cross-table residual predicate, grouping and
//! aggregation, ordering, and a limit. TPC-H queries with subqueries run as
//! multiple phases composed in host code (as MariaDB materializes them).
//!
//! Expressions over the *joined* row address a global flat column space:
//! the concatenation of every scan's schema in declaration order, regardless
//! of the join order the planner picks.

use crate::expr::Expr;
use crate::value::Value;

/// One base-table access with its local filter.
#[derive(Debug, Clone)]
pub struct TableScanSpec {
    /// Table name in the catalog.
    pub table: String,
    /// Predicate over the table's own columns (local indices).
    pub predicate: Option<Expr>,
}

/// An equi-join edge between two scans.
#[derive(Debug, Clone, Copy)]
pub struct JoinEdge {
    /// Index into [`SelectSpec::scans`].
    pub left: usize,
    /// Column within the left scan's schema.
    pub left_col: usize,
    /// Index into [`SelectSpec::scans`].
    pub right: usize,
    /// Column within the right scan's schema.
    pub right_col: usize,
}

/// Aggregate functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggFun {
    /// `SUM(expr)`
    Sum,
    /// `AVG(expr)`
    Avg,
    /// `COUNT(*)` (expression ignored) or `COUNT(expr)`.
    Count,
    /// `MIN(expr)`
    Min,
    /// `MAX(expr)`
    Max,
}

/// Sort key over the output row.
#[derive(Debug, Clone, Copy)]
pub struct OrderKey {
    /// Output column index.
    pub col: usize,
    /// Descending order if true.
    pub desc: bool,
}

/// A full select specification.
#[derive(Debug, Clone, Default)]
pub struct SelectSpec {
    /// Human-readable name (used in reports).
    pub name: String,
    /// Base table accesses.
    pub scans: Vec<TableScanSpec>,
    /// Equi-join edges (must connect the scans into one component for a
    /// cross-product-free plan).
    pub edges: Vec<JoinEdge>,
    /// Cross-table predicate over the global flat row, applied after joins.
    pub residual: Option<Expr>,
    /// Group-by expressions over the global flat row (empty = one group if
    /// aggregates are present, plain projection otherwise).
    pub group_by: Vec<Expr>,
    /// Aggregates over the global flat row.
    pub aggregates: Vec<(AggFun, Expr)>,
    /// Post-aggregation filter over the output row.
    pub having: Option<Expr>,
    /// Projection for non-aggregate queries (global flat row expressions).
    pub projection: Vec<Expr>,
    /// Sort order over the output row.
    pub order_by: Vec<OrderKey>,
    /// Row limit.
    pub limit: Option<usize>,
}

impl SelectSpec {
    /// Starts a spec with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        SelectSpec {
            name: name.into(),
            ..Default::default()
        }
    }

    /// Adds a scan; returns its index.
    pub fn scan(&mut self, table: &str, predicate: Option<Expr>) -> usize {
        self.scans.push(TableScanSpec {
            table: table.to_owned(),
            predicate,
        });
        self.scans.len() - 1
    }

    /// Adds an equi-join edge between `(left, left_col)` and
    /// `(right, right_col)`.
    pub fn join(&mut self, left: usize, left_col: usize, right: usize, right_col: usize) {
        self.edges.push(JoinEdge {
            left,
            left_col,
            right,
            right_col,
        });
    }
}

/// Execution mode: the two systems the paper compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Conventional host processing (default SSD).
    Conv,
    /// Biscuit NDP offload where the planner allows it.
    Biscuit,
}

/// A literal helper: `Value::Str` from `&str`.
pub fn s(v: &str) -> Value {
    Value::Str(v.to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_indices() {
        let mut spec = SelectSpec::new("t");
        let a = spec.scan("lineitem", None);
        let b = spec.scan("part", None);
        assert_eq!((a, b), (0, 1));
        spec.join(a, 1, b, 0);
        assert_eq!(spec.edges.len(), 1);
    }
}
