//! The query engine: planning (with NDP offload decisions), scanning over
//! either datapath, block nested-loop joins, and result shaping.
//!
//! The planner reproduces the paper's modified MariaDB pipeline (§V-C):
//!
//! 1. **candidate detection** — a table qualifies if it is large enough and
//!    its local predicate yields pattern-matcher keys;
//! 2. **selectivity sampling** — a handful of pages are read over the Conv
//!    path and checked against the keys to estimate the fraction of pages
//!    the matcher would pass;
//! 3. **threshold** — offload only when the matcher filters enough pages;
//! 4. **join reorder** — offloaded (filtered) tables move to the front of
//!    the join order, which multiplies the win on block nested-loop joins
//!    (the paper's Q14 effect).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use parking_lot::Mutex;

use biscuit_core::runtime::ModuleId;
use biscuit_core::{Application, BiscuitError, Ssd};
use biscuit_fs::Mode;
use biscuit_host::{ConvIo, HostConfig, HostLoad};
use biscuit_sim::qprof::Stage;
use biscuit_sim::time::{SimDuration, SimTime};
use biscuit_sim::trace::TraceEvent;
use biscuit_sim::{Ctx, FaultSite};

use crate::error::{DbError, DbResult};
use crate::exec;
use crate::expr::{pattern_keys, Expr};
use crate::offload::{scan_module, AggArgs, ScanArgs, AGGREGATE_ID, SCAN_FILTER_ID};
use crate::schema::{Catalog, Schema, TableMeta};
use crate::spec::{ExecMode, SelectSpec};
use crate::table;
use crate::value::Row;

/// Engine tuning parameters.
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// Host row-processing rate (parse + filter + join bookkeeping),
    /// bytes/second. Calibrated so lineitem filter queries land near the
    /// paper's ~11x Biscuit speed-up (Fig. 8).
    pub host_row_rate: f64,
    /// Pages sampled per offload-candidate table.
    pub sample_pages: u64,
    /// Offload only if the estimated fraction of *rows* satisfying the
    /// predicate is at or below this. (The paper phrases selectivity at
    /// page granularity; we estimate at row granularity because the
    /// pattern matcher reports hit offsets, so the device verifies and
    /// forwards individual rows — the reduction that matters is row-level.
    /// The decision shape is the same: near-1 selectivity declines.)
    pub selectivity_threshold: f64,
    /// Minimum table size (pages) worth offloading.
    pub min_table_pages: u64,
    /// Rows per device-to-host result batch.
    pub batch_rows: usize,
    /// Rows per block of the block nested-loop join (MariaDB join buffer).
    pub bnl_block_rows: usize,
    /// Pages per internal scan request.
    pub scan_request_pages: usize,
    /// Outstanding scan requests (device side) / read requests (host side).
    pub scan_queue_depth: usize,
    /// Place NDP-filtered tables first in the join order (the paper's
    /// query-planning heuristic behind Q14's 315x I/O reduction). Disable
    /// for the ablation study.
    pub ndp_join_reorder: bool,
    /// Push whole-table aggregations onto the device as a second SSDlet fed
    /// by the scan over an inter-SSDlet port, so only the final row crosses
    /// the link. An *extension* beyond the paper's filter-only offload
    /// (default off to keep the headline experiments faithful).
    pub aggregate_pushdown: bool,
}

impl DbConfig {
    /// Defaults calibrated against Section V-C of the paper.
    pub fn paper_default() -> Self {
        DbConfig {
            host_row_rate: 200.0e6,
            sample_pages: 24,
            selectivity_threshold: 0.25,
            min_table_pages: 128,
            batch_rows: 512,
            bnl_block_rows: 2048,
            scan_request_pages: 64,
            scan_queue_depth: 16,
            ndp_join_reorder: true,
            aggregate_pushdown: false,
        }
    }
}

impl Default for DbConfig {
    fn default() -> Self {
        Self::paper_default()
    }
}

/// Per-scan planning outcome.
#[derive(Debug, Clone)]
pub struct ScanPlan {
    /// Pattern keys when offloaded.
    pub offload_keys: Option<Vec<Vec<u8>>>,
    /// Estimated fraction of rows satisfying the predicate (1.0 when not
    /// sampled).
    pub est_selectivity: f64,
}

/// One scan's planning decision, human-readable (see [`Db::explain`]).
#[derive(Debug, Clone)]
pub struct ScanExplain {
    /// Table name.
    pub table: String,
    /// Whether the scan is pushed to the device.
    pub offloaded: bool,
    /// Sampled row selectivity (1.0 when not sampled).
    pub est_selectivity: f64,
    /// Pattern-matcher keys, lossily decoded for display.
    pub keys: Vec<String>,
}

/// A query plan summary (see [`Db::explain`]).
#[derive(Debug, Clone)]
pub struct PlanExplain {
    /// Per-scan decisions, in spec order.
    pub scans: Vec<ScanExplain>,
    /// Join order by table name.
    pub join_order: Vec<String>,
}

/// Statistics for one executed query.
#[derive(Debug, Clone, Default)]
pub struct QueryStats {
    /// Names of tables whose scans were offloaded.
    pub offloaded_tables: Vec<String>,
    /// Bytes that crossed the host interface toward the host.
    pub link_bytes_to_host: u64,
    /// Pages streamed through the device-side pattern matcher.
    pub device_pages_scanned: u64,
    /// Result row count.
    pub rows_out: usize,
    /// Virtual execution time.
    pub elapsed: SimDuration,
}

/// Rows plus stats.
#[derive(Debug, Clone)]
pub struct QueryOutput {
    /// Result rows.
    pub rows: Vec<Row>,
    /// Execution statistics.
    pub stats: QueryStats,
}

/// The mini DB engine (the MariaDB/XtraDB stand-in).
///
/// # Examples
///
/// ```
/// use biscuit_core::{CoreConfig, Ssd};
/// use biscuit_db::expr::Expr;
/// use biscuit_db::spec::{ExecMode, SelectSpec};
/// use biscuit_db::{ColumnType, Db, DbConfig, Schema, Value};
/// use biscuit_fs::Fs;
/// use biscuit_host::{HostConfig, HostLoad};
/// use biscuit_sim::Simulation;
/// use biscuit_ssd::{SsdConfig, SsdDevice};
/// use std::sync::Arc;
///
/// let dev = Arc::new(SsdDevice::new(SsdConfig {
///     logical_capacity: 64 << 20,
///     ..SsdConfig::paper_default()
/// }));
/// let ssd = Ssd::new(Fs::format(dev), CoreConfig::paper_default());
/// let mut db = Db::new(ssd, HostConfig::paper_default(), DbConfig::paper_default());
/// let schema = Schema::new(&[("id", ColumnType::Int), ("tag", ColumnType::Str)]);
/// let rows: Vec<Vec<Value>> = (0..100)
///     .map(|i| vec![Value::Int(i), Value::Str(format!("tag{}", i % 10))])
///     .collect();
/// db.create_table("demo", schema, &rows).unwrap();
/// let db = Arc::new(db);
///
/// let sim = Simulation::new(0);
/// sim.spawn("host", move |ctx| {
///     let mut spec = SelectSpec::new("example");
///     spec.scan("demo", Some(Expr::col_eq(1, Value::Str("tag3".into()))));
///     let out = db.execute(ctx, &spec, ExecMode::Conv, HostLoad::IDLE).unwrap();
///     assert_eq!(out.rows.len(), 10);
/// });
/// sim.run().assert_quiescent();
/// ```
pub struct Db {
    ssd: Ssd,
    conv: ConvIo,
    catalog: Catalog,
    cfg: DbConfig,
    scan_mid: Mutex<Option<ModuleId>>,
    row_cache: Mutex<HashMap<String, Arc<Vec<Row>>>>,
}

impl std::fmt::Debug for Db {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Db")
            .field("tables", &self.catalog.table_names())
            .finish()
    }
}

impl Db {
    /// Creates an engine over a Biscuit-enabled SSD.
    pub fn new(ssd: Ssd, host_cfg: HostConfig, cfg: DbConfig) -> Db {
        let conv = ConvIo::new(Arc::clone(ssd.device()), Arc::clone(ssd.link()), host_cfg);
        Db {
            ssd,
            conv,
            catalog: Catalog::new(),
            cfg,
            scan_mid: Mutex::new(None),
            row_cache: Mutex::new(HashMap::new()),
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &DbConfig {
        &self.cfg
    }

    /// The catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The underlying Biscuit SSD handle.
    pub fn ssd(&self) -> &Ssd {
        &self.ssd
    }

    /// Creates and bulk-loads a table (untimed; pre-experiment setup).
    ///
    /// # Errors
    ///
    /// Returns storage or duplicate-name errors.
    pub fn create_table(&mut self, name: &str, schema: Schema, rows: &[Row]) -> DbResult<()> {
        let meta = table::create_table(self.ssd.fs(), name, schema, rows)?;
        self.catalog.register(meta)?;
        Ok(())
    }

    fn meta(&self, name: &str) -> DbResult<&TableMeta> {
        self.catalog.table(name)
    }

    /// Pre-loads the device-side scan module so its deployment cost does not
    /// land inside a measured query (one-time setup, as in the paper).
    ///
    /// # Errors
    ///
    /// Returns framework errors from module loading.
    pub fn prepare(&self, ctx: &Ctx) -> DbResult<()> {
        self.ensure_scan_module(ctx)?;
        Ok(())
    }

    fn ensure_scan_module(&self, ctx: &Ctx) -> DbResult<ModuleId> {
        let mut mid = self.scan_mid.lock();
        if let Some(m) = *mid {
            return Ok(m);
        }
        let m = self.ssd.load_module(ctx, scan_module())?;
        *mid = Some(m);
        Ok(m)
    }

    /// Host CPU charge for processing `bytes` of row data under `load`.
    /// Public so multi-phase query drivers (TPC-H) can account for their
    /// host-side post-processing.
    pub fn charge_host_bytes(&self, ctx: &Ctx, bytes: u64, load: HostLoad) {
        let rate = self.cfg.host_row_rate / load.bandwidth_slowdown(self.conv.config());
        let t0 = ctx.now();
        ctx.sleep(SimDuration::for_bytes(bytes, rate));
        ctx.qprof().record(Stage::HostCompute, t0, ctx.now(), bytes, 0);
    }

    fn charge_host_rows(&self, ctx: &Ctx, bytes: u64, load: HostLoad) {
        self.charge_host_bytes(ctx, bytes, load);
    }

    /// Parses (or fetches cached) full table contents. Timing is charged by
    /// the callers; this is the functional half.
    fn table_rows(&self, meta: &TableMeta) -> DbResult<Arc<Vec<Row>>> {
        if let Some(rows) = self.row_cache.lock().get(&meta.name) {
            return Ok(Arc::clone(rows));
        }
        let mut rows = Vec::with_capacity(meta.rows as usize);
        for lpn_idx in 0..meta.pages {
            let file = self.ssd.fs().open(&meta.file_path, Mode::ReadOnly)?;
            let lpns =
                file.lpns_for_range(lpn_idx * self.page_size() as u64, self.page_size() as u64)?;
            let page = self
                .ssd
                .device()
                .peek_page(lpns[0])
                .map_err(|e| DbError::Fs(biscuit_fs::FsError::Device(e)))?;
            rows.extend(table::parse_page(&meta.schema, &meta.name, &page)?);
        }
        let rows = Arc::new(rows);
        self.row_cache
            .lock()
            .insert(meta.name.clone(), Arc::clone(&rows));
        Ok(rows)
    }

    fn page_size(&self) -> usize {
        self.ssd.device().config().page_size
    }

    /// Plans every scan of `spec` for the given mode, charging sampling I/O.
    ///
    /// # Errors
    ///
    /// Returns catalog or I/O errors.
    pub fn plan_scans(
        &self,
        ctx: &Ctx,
        spec: &SelectSpec,
        mode: ExecMode,
        load: HostLoad,
    ) -> DbResult<Vec<ScanPlan>> {
        let mut plans = Vec::with_capacity(spec.scans.len());
        for scan in &spec.scans {
            let meta = self.meta(&scan.table)?;
            let mut plan = ScanPlan {
                offload_keys: None,
                est_selectivity: 1.0,
            };
            if mode == ExecMode::Biscuit {
                if meta.pages < self.cfg.min_table_pages {
                    self.trace_verdict(
                        ctx,
                        &meta.name,
                        false,
                        1.0,
                        "table smaller than min_table_pages",
                    );
                } else if let Some(keys) = scan.predicate.as_ref().and_then(pattern_keys) {
                    let predicate = scan.predicate.as_ref().expect("keys imply a predicate");
                    let est = self.sample_selectivity(ctx, meta, predicate, load)?;
                    plan.est_selectivity = est;
                    if est <= self.cfg.selectivity_threshold {
                        plan.offload_keys = Some(keys);
                        self.trace_verdict(
                            ctx,
                            &meta.name,
                            true,
                            est,
                            "selectivity below threshold",
                        );
                    } else {
                        self.trace_verdict(
                            ctx,
                            &meta.name,
                            false,
                            est,
                            "selectivity above threshold",
                        );
                    }
                } else {
                    self.trace_verdict(ctx, &meta.name, false, 1.0, "no pattern keys");
                }
            }
            plans.push(plan);
        }
        Ok(plans)
    }

    /// Records one planner offload decision into the attached tracer and
    /// metrics registry, if any.
    fn trace_verdict(
        &self,
        ctx: &Ctx,
        table: &str,
        offloaded: bool,
        est_selectivity: f64,
        reason: &'static str,
    ) {
        if let Some(tracer) = self.ssd.tracer() {
            tracer.emit(|| TraceEvent::OffloadVerdict {
                at: ctx.now(),
                table: Arc::from(table),
                offloaded,
                est_selectivity,
                reason,
            });
        }
        // Planner verdicts are rare (one per scanned table), so the counter
        // is looked up per verdict rather than pre-registered.
        if let Some(registry) = self.ssd.metrics() {
            if registry.is_enabled() {
                let decision = if offloaded { "offload" } else { "host-scan" };
                registry
                    .counter(
                        "db_offload_verdicts_total",
                        &[("decision", decision), ("reason", reason)],
                    )
                    .inc();
            }
        }
    }

    /// The paper's "quick check on the table to estimate selectivity using
    /// a sampling method": reads evenly spread pages over the Conv path,
    /// parses their rows, and reports the fraction satisfying the predicate.
    fn sample_selectivity(
        &self,
        ctx: &Ctx,
        meta: &TableMeta,
        predicate: &Expr,
        load: HostLoad,
    ) -> DbResult<f64> {
        let n = self.cfg.sample_pages.min(meta.pages).max(1);
        let file = self.ssd.fs().open(&meta.file_path, Mode::ReadOnly)?;
        let mut total = 0u64;
        let mut matched = 0u64;
        for i in 0..n {
            let page_idx = i * meta.pages / n;
            let pages = self
                .conv
                .read_file_pages_async(ctx, &file, page_idx, 1, 1, 1, load)?;
            let rows = table::parse_page(&meta.schema, &meta.name, &pages[0])?;
            self.charge_host_rows(ctx, self.page_size() as u64, load);
            for row in &rows {
                total += 1;
                if predicate.eval_bool(row)? {
                    matched += 1;
                }
            }
        }
        if total == 0 {
            return Ok(1.0);
        }
        Ok(matched as f64 / total as f64)
    }

    /// Scans one table (local rows, local predicate applied) over the
    /// datapath the plan picked, charging all timing.
    fn scan_local(
        &self,
        ctx: &Ctx,
        scan_idx: usize,
        spec: &SelectSpec,
        plans: &[ScanPlan],
        load: HostLoad,
    ) -> DbResult<Vec<Row>> {
        let scan = &spec.scans[scan_idx];
        let meta = self.meta(&scan.table)?;
        match &plans[scan_idx].offload_keys {
            Some(keys) => self.scan_ndp(ctx, meta, scan.predicate.as_ref().unwrap(), keys, load),
            None => self.scan_conv(ctx, meta, scan.predicate.as_ref(), load),
        }
    }

    /// Conventional scan: stream the whole table over the link, parse and
    /// filter on the host. I/O and CPU pipeline (single reader thread).
    fn scan_conv(
        &self,
        ctx: &Ctx,
        meta: &TableMeta,
        predicate: Option<&Expr>,
        load: HostLoad,
    ) -> DbResult<Vec<Row>> {
        let file = self.ssd.fs().open(&meta.file_path, Mode::ReadOnly)?;
        let ps = self.page_size() as u64;
        let chunk_pages = (self.cfg.scan_request_pages * self.cfg.scan_queue_depth) as u64;
        let cpu_rate = self.cfg.host_row_rate / load.bandwidth_slowdown(self.conv.config());
        let mut cpu_backlog = SimDuration::ZERO;
        let mut page_idx = 0u64;
        while page_idx < meta.pages {
            let n = chunk_pages.min(meta.pages - page_idx);
            let t0 = ctx.now();
            let _pages = self.conv.read_file_pages_async(
                ctx,
                &file,
                page_idx,
                n,
                self.cfg.scan_request_pages,
                self.cfg.scan_queue_depth,
                load,
            )?;
            // The host CPU worked on previous chunks while this I/O was in
            // flight; whatever did not fit remains as backlog.
            let io_elapsed = ctx.now() - t0;
            cpu_backlog = cpu_backlog.saturating_sub(io_elapsed);
            cpu_backlog += SimDuration::for_bytes(n * ps, cpu_rate);
            page_idx += n;
        }
        let t_cpu = ctx.now();
        ctx.sleep(cpu_backlog);
        ctx.qprof().record(Stage::HostCompute, t_cpu, ctx.now(), 0, 0);
        // Functional result (cached parse; the timing above covers it).
        let all = self.table_rows(meta)?;
        match predicate {
            None => Ok(all.as_ref().clone()),
            Some(p) => exec::filter_ref(p, &all),
        }
    }

    /// NDP scan: dispatch the scan-filter SSDlet via the Biscuit framework
    /// and drain qualifying rows from the device-to-host port.
    fn scan_ndp(
        &self,
        ctx: &Ctx,
        meta: &TableMeta,
        predicate: &Expr,
        keys: &[Vec<u8>],
        load: HostLoad,
    ) -> DbResult<Vec<Row>> {
        let mid = self.ensure_scan_module(ctx)?;
        let file = self.ssd.fs().open(&meta.file_path, Mode::ReadOnly)?;
        let app = Application::new(&self.ssd, format!("scan-{}", meta.name));
        let scanner = app.ssdlet_with(
            mid,
            SCAN_FILTER_ID,
            ScanArgs {
                file,
                types: meta.schema.types(),
                predicate: predicate.clone(),
                keys: keys.to_vec(),
                batch_rows: self.cfg.batch_rows,
                request_pages: self.cfg.scan_request_pages,
                queue_depth: self.cfg.scan_queue_depth,
            },
        )?;
        let rx = app.connect_to::<Vec<Row>>(scanner.out(0))?;
        app.start(ctx)?;
        let plan = self.ssd.fault_plan();
        let mut rows = Vec::new();
        let mut fallback: Option<&'static str> = None;
        if let Some(timeout) = plan.host_timeout() {
            loop {
                match rx.get_deadline(ctx, timeout) {
                    Ok(Some(batch)) => {
                        // The host still runs returned rows through the upper
                        // executor layers.
                        let bytes: usize = batch.len() * 64;
                        self.charge_host_rows(ctx, bytes as u64, load);
                        rows.extend(batch);
                    }
                    Ok(None) => break,
                    Err(_) => {
                        // The offload blew past the host deadline. Keep
                        // draining (discarding) so the device fibers can
                        // finish, then degrade to the host path.
                        plan.record_failed(ctx.now(), FaultSite::Ssdlet, "host_timeout");
                        fallback = Some("timeout");
                        while rx.get(ctx).is_some() {}
                        break;
                    }
                }
            }
        } else {
            while let Some(batch) = rx.get(ctx) {
                // The host still runs returned rows through the upper executor
                // layers.
                let bytes: usize = batch.len() * 64;
                self.charge_host_rows(ctx, bytes as u64, load);
                rows.extend(batch);
            }
        }
        app.join(ctx);
        if fallback.is_none() && app.failure().is_some() {
            fallback = Some("ssdlet_failure");
        }
        if let Some(cause) = fallback {
            // Graceful degradation: discard the partial offload output and
            // re-run the scan on the host path. Results stay byte-identical
            // because both paths evaluate the same predicate over the same
            // cached rows.
            rows.clear();
            if let Some(registry) = self.ssd.metrics() {
                if registry.is_enabled() {
                    registry
                        .counter(
                            "db_host_fallbacks_total",
                            &[("table", meta.name.as_str()), ("cause", cause)],
                        )
                        .inc();
                }
            }
            plan.record_recovered(ctx.now(), FaultSite::Ssdlet, "host_fallback");
            // The re-run executes under a child phase span so the profile
            // shows the fallback as an attributed stretch of the query
            // rather than unexplained host time.
            let qp = ctx.qprof().clone();
            let parent = qp.current();
            let phase = parent.map(|sc| qp.child(sc, "host_fallback"));
            if phase.is_some() {
                qp.adopt(ctx, phase);
            }
            let fb_start = ctx.now();
            let recovered = self.scan_conv(ctx, meta, Some(predicate), load);
            if let Some(p) = phase {
                qp.record_for(p, Stage::HostCompute, fb_start, ctx.now(), 0, 0);
                qp.adopt(ctx, parent);
            }
            return recovered;
        }
        Ok(rows)
    }

    /// Extension: scan + aggregate entirely on the device. The scan SSDlet
    /// feeds the aggregator over a typed inter-SSDlet port; a single result
    /// row crosses the host interface (paper §III-A: "retrieving
    /// intermediate/final computational results only").
    fn scan_ndp_aggregate(
        &self,
        ctx: &Ctx,
        meta: &TableMeta,
        predicate: &Expr,
        keys: &[Vec<u8>],
        aggs: &[(crate::spec::AggFun, Expr)],
        load: HostLoad,
    ) -> DbResult<Vec<Row>> {
        let mid = self.ensure_scan_module(ctx)?;
        let file = self.ssd.fs().open(&meta.file_path, Mode::ReadOnly)?;
        let app = Application::new(&self.ssd, format!("scanagg-{}", meta.name));
        let scanner = app.ssdlet_with(
            mid,
            SCAN_FILTER_ID,
            ScanArgs {
                file,
                types: meta.schema.types(),
                predicate: predicate.clone(),
                keys: keys.to_vec(),
                batch_rows: self.cfg.batch_rows,
                request_pages: self.cfg.scan_request_pages,
                queue_depth: self.cfg.scan_queue_depth,
            },
        )?;
        let agg = app.ssdlet_with(
            mid,
            AGGREGATE_ID,
            AggArgs {
                aggs: aggs.to_vec(),
            },
        )?;
        app.connect::<Vec<Row>>(scanner.out(0), agg.input(0))?;
        let rx = app.connect_to::<Vec<Row>>(agg.out(0))?;
        app.start(ctx)?;
        let plan = self.ssd.fault_plan();
        let mut rows = Vec::new();
        if let Some(timeout) = plan.host_timeout() {
            loop {
                match rx.get_deadline(ctx, timeout) {
                    Ok(Some(batch)) => {
                        self.charge_host_rows(ctx, (batch.len() * 16) as u64, load);
                        rows.extend(batch);
                    }
                    Ok(None) => break,
                    Err(e) => {
                        // Drain (discarding) so the device pipeline can
                        // finish, then surface the typed timeout; the caller
                        // degrades to the host execution path.
                        plan.record_failed(ctx.now(), FaultSite::Ssdlet, "host_timeout");
                        while rx.get(ctx).is_some() {}
                        app.join(ctx);
                        return Err(e.into());
                    }
                }
            }
        } else {
            while let Some(batch) = rx.get(ctx) {
                self.charge_host_rows(ctx, (batch.len() * 16) as u64, load);
                rows.extend(batch);
            }
        }
        app.join_checked(ctx)?;
        Ok(rows)
    }

    /// True when a spec qualifies for whole-query aggregate pushdown:
    /// single offloaded scan, global aggregation, nothing else.
    fn qualifies_for_agg_pushdown(&self, spec: &SelectSpec, plans: &[ScanPlan]) -> bool {
        self.cfg.aggregate_pushdown
            && spec.scans.len() == 1
            && plans[0].offload_keys.is_some()
            && spec.group_by.is_empty()
            && !spec.aggregates.is_empty()
            && spec.residual.is_none()
            && spec.having.is_none()
            && spec.projection.is_empty()
    }

    /// Join order: offloaded (filtered) scans first — most selective first —
    /// then the rest smallest-first (MariaDB's default), greedily restricted
    /// to tables connected to the already-joined set.
    fn join_order(&self, spec: &SelectSpec, plans: &[ScanPlan]) -> DbResult<Vec<usize>> {
        let mut pref: Vec<usize> = (0..spec.scans.len()).collect();
        let size_of = |i: usize| -> DbResult<u64> { Ok(self.meta(&spec.scans[i].table)?.rows) };
        let mut sizes = Vec::new();
        for i in 0..spec.scans.len() {
            sizes.push(size_of(i)?);
        }
        let reorder = self.cfg.ndp_join_reorder;
        pref.sort_by(|&a, &b| {
            let key = |i: usize| {
                let offloaded = reorder && plans[i].offload_keys.is_some();
                (
                    if offloaded { 0u8 } else { 1u8 },
                    if offloaded {
                        (plans[i].est_selectivity * 1e6) as u64
                    } else {
                        sizes[i]
                    },
                )
            };
            key(a).cmp(&key(b))
        });
        // Greedy connectivity.
        let mut order = vec![pref[0]];
        let mut joined: HashSet<usize> = order.iter().copied().collect();
        while order.len() < spec.scans.len() {
            let next = pref
                .iter()
                .copied()
                .filter(|i| !joined.contains(i))
                .find(|&i| {
                    spec.edges.iter().any(|e| {
                        (e.left == i && joined.contains(&e.right))
                            || (e.right == i && joined.contains(&e.left))
                    })
                })
                .or_else(|| pref.iter().copied().find(|i| !joined.contains(i)))
                .expect("tables remain");
            joined.insert(next);
            order.push(next);
        }
        Ok(order)
    }

    /// Explains how a spec would execute: per-scan offload decisions (with
    /// estimated selectivities and pattern keys) and the chosen join order.
    /// Charges the same sampling I/O the real planner would.
    ///
    /// # Errors
    ///
    /// Returns catalog or I/O errors.
    pub fn explain(
        &self,
        ctx: &Ctx,
        spec: &SelectSpec,
        mode: ExecMode,
        load: HostLoad,
    ) -> DbResult<PlanExplain> {
        let plans = self.plan_scans(ctx, spec, mode, load)?;
        let order = self.join_order(spec, &plans)?;
        Ok(PlanExplain {
            scans: spec
                .scans
                .iter()
                .zip(&plans)
                .map(|(s, p)| ScanExplain {
                    table: s.table.clone(),
                    offloaded: p.offload_keys.is_some(),
                    est_selectivity: p.est_selectivity,
                    keys: p
                        .offload_keys
                        .iter()
                        .flatten()
                        .map(|k| String::from_utf8_lossy(k).into_owned())
                        .collect(),
                })
                .collect(),
            join_order: order
                .into_iter()
                .map(|i| spec.scans[i].table.clone())
                .collect(),
        })
    }

    /// Executes a select spec in the given mode under the given load.
    ///
    /// When query profiling is enabled and the calling fiber carries no
    /// span context yet (a standalone query, not one dispatched by the
    /// array scheduler), a root query span is minted here — tenant 0 —
    /// and closed when execution finishes, success or error.
    ///
    /// # Errors
    ///
    /// Returns catalog, I/O, expression, or framework errors.
    pub fn execute(
        &self,
        ctx: &Ctx,
        spec: &SelectSpec,
        mode: ExecMode,
        load: HostLoad,
    ) -> DbResult<QueryOutput> {
        let qp = ctx.qprof().clone();
        let minted = if qp.current().is_none() {
            qp.begin_query(ctx, 0)
        } else {
            None
        };
        let out = self.execute_inner(ctx, spec, mode, load);
        if let Some(sc) = minted {
            qp.end_query(ctx, sc);
        }
        out
    }

    fn execute_inner(
        &self,
        ctx: &Ctx,
        spec: &SelectSpec,
        mode: ExecMode,
        load: HostLoad,
    ) -> DbResult<QueryOutput> {
        if mode == ExecMode::Biscuit {
            // Module deployment is one-time setup (the paper loads SSDlet
            // modules before measuring), not part of query time.
            self.ensure_scan_module(ctx)?;
        }
        let t0 = ctx.now();
        let link0 = self.ssd.link().bytes_to_host();
        let dev0 = self.ssd.device().stats().pages_scanned.get();

        let plans = self.plan_scans(ctx, spec, mode, load)?;

        // Extension path: the whole query (scan + aggregate) runs on the
        // device and one row comes back.
        if self.qualifies_for_agg_pushdown(spec, &plans) {
            let scan = &spec.scans[0];
            let meta = self.meta(&scan.table)?;
            let keys = plans[0].offload_keys.as_ref().expect("qualified");
            match self.scan_ndp_aggregate(
                ctx,
                meta,
                scan.predicate.as_ref().expect("keys imply predicate"),
                keys,
                &spec.aggregates,
                load,
            ) {
                Ok(mut rows) => {
                    exec::order_and_limit(&mut rows, &spec.order_by, spec.limit);
                    let stats = QueryStats {
                        offloaded_tables: vec![scan.table.clone()],
                        link_bytes_to_host: self.ssd.link().bytes_to_host() - link0,
                        device_pages_scanned: self.ssd.device().stats().pages_scanned.get() - dev0,
                        rows_out: rows.len(),
                        elapsed: ctx.now() - t0,
                    };
                    return Ok(QueryOutput { rows, stats });
                }
                Err(DbError::Biscuit(
                    BiscuitError::RequestTimeout { .. } | BiscuitError::SsdletPanicked { .. },
                )) => {
                    // Graceful degradation: the pushed-down pipeline failed
                    // past its recovery budget; fall through to the general
                    // host-side execution path (whose scans carry their own
                    // fallback) for byte-identical results.
                    if let Some(registry) = self.ssd.metrics() {
                        if registry.is_enabled() {
                            registry
                                .counter(
                                    "db_host_fallbacks_total",
                                    &[("table", scan.table.as_str()), ("cause", "agg_pushdown")],
                                )
                                .inc();
                        }
                    }
                }
                Err(e) => return Err(e),
            }
        }

        let order = self.join_order(spec, &plans)?;

        // Global flat row layout.
        let mut offsets = Vec::with_capacity(spec.scans.len());
        let mut width = 0usize;
        for scan in &spec.scans {
            offsets.push(width);
            width += self.meta(&scan.table)?.schema.len();
        }

        // First table.
        let first = order[0];
        let local = self.scan_local(ctx, first, spec, &plans, load)?;
        let mut acc = exec::widen(local, offsets[first], width);
        let mut joined: HashSet<usize> = [first].into();

        // Subsequent tables: block nested-loop with inner re-scans.
        for &next in &order[1..] {
            let mut edges_out: Vec<usize> = Vec::new(); // global cols in acc
            let mut edges_in: Vec<usize> = Vec::new(); // local cols of inner
            for e in &spec.edges {
                if e.left == next && joined.contains(&e.right) {
                    edges_in.push(e.left_col);
                    edges_out.push(offsets[e.right] + e.right_col);
                } else if e.right == next && joined.contains(&e.left) {
                    edges_in.push(e.right_col);
                    edges_out.push(offsets[e.left] + e.left_col);
                }
            }
            let mut out = Vec::new();
            if acc.is_empty() {
                // No outer rows: the BNL join performs no inner scans.
            } else {
                for block in acc.chunks(self.cfg.bnl_block_rows.max(1)) {
                    // Re-scan the inner table for every outer block — the
                    // I/O amplification that makes join order matter.
                    let inner = self.scan_local(ctx, next, spec, &plans, load)?;
                    // Probe cost on the host.
                    self.charge_host_rows(ctx, (inner.len() * 16) as u64, load);
                    if edges_in.is_empty() {
                        exec::cross_block(block, &inner, offsets[next], &mut out);
                    } else {
                        exec::hash_probe_block(
                            block,
                            &edges_out,
                            &inner,
                            &edges_in,
                            offsets[next],
                            &mut out,
                        );
                    }
                }
            }
            acc = out;
            joined.insert(next);
        }

        // Residual predicate over the full row.
        if let Some(res) = &spec.residual {
            self.charge_host_rows(ctx, (acc.len() * 16) as u64, load);
            acc = exec::filter(res, acc)?;
        }

        // Shaping.
        let mut rows = if !spec.aggregates.is_empty() {
            self.charge_host_rows(ctx, (acc.len() * 16) as u64, load);
            let mut out = exec::aggregate(spec, &acc)?;
            if let Some(h) = &spec.having {
                out = exec::filter(h, out)?;
            }
            out
        } else if !spec.projection.is_empty() {
            exec::project(&spec.projection, &acc)?
        } else {
            acc
        };
        exec::order_and_limit(&mut rows, &spec.order_by, spec.limit);

        let stats = QueryStats {
            offloaded_tables: spec
                .scans
                .iter()
                .zip(&plans)
                .filter(|(_, p)| p.offload_keys.is_some())
                .map(|(s, _)| s.table.clone())
                .collect(),
            link_bytes_to_host: self.ssd.link().bytes_to_host() - link0,
            device_pages_scanned: self.ssd.device().stats().pages_scanned.get() - dev0,
            rows_out: rows.len(),
            elapsed: ctx.now() - t0,
        };
        Ok(QueryOutput { rows, stats })
    }
}

/// Time since an instant, usable in tests.
pub fn elapsed_since(ctx: &Ctx, t0: SimTime) -> SimDuration {
    ctx.now() - t0
}
