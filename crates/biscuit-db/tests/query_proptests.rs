//! Property tests over the query engine: for randomly generated predicates,
//! (1) the Conv scan equals a direct in-memory filter, and (2) Biscuit mode
//! returns exactly the same rows regardless of whether the planner chose to
//! offload — the repository's central correctness invariant, explored over
//! a much wider predicate space than the fixed TPC-H suite.

use std::sync::Arc;

use parking_lot::Mutex;
use proptest::prelude::*;

use biscuit_core::{CoreConfig, Ssd};
use biscuit_db::expr::{CmpOp, Expr};
use biscuit_db::spec::{ExecMode, SelectSpec};
use biscuit_db::{ColumnType, Db, DbConfig, Row, Schema, Value};
use biscuit_fs::Fs;
use biscuit_host::{HostConfig, HostLoad};
use biscuit_sim::Simulation;
use biscuit_ssd::{SsdConfig, SsdDevice};

const ROWS: usize = 8_000;
const CATEGORIES: [&str; 6] = ["ALPHA", "BRAVO", "CHARLIE", "DELTA", "ECHO", "FOXTROT"];

fn dataset() -> Vec<Row> {
    (0..ROWS)
        .map(|i| {
            vec![
                Value::Int(i as i64),
                Value::Str(format!("{}{:02}", CATEGORIES[i % CATEGORIES.len()], i % 17)),
                Value::Float((i % 500) as f64 / 10.0),
                Value::Date(9_000 + (i % 900) as i32),
                Value::Str(format!("filler text to widen rows {i:0>40}")),
            ]
        })
        .collect()
}

fn make_db() -> Arc<Db> {
    let dev = Arc::new(SsdDevice::new(SsdConfig {
        logical_capacity: 256 << 20,
        ..SsdConfig::paper_default()
    }));
    let ssd = Ssd::new(Fs::format(dev), CoreConfig::paper_default());
    let mut db = Db::new(ssd, HostConfig::paper_default(), DbConfig::paper_default());
    let schema = Schema::new(&[
        ("id", ColumnType::Int),
        ("category", ColumnType::Str),
        ("price", ColumnType::Float),
        ("ship", ColumnType::Date),
        ("comment", ColumnType::Str),
    ]);
    db.create_table("items", schema, &dataset()).unwrap();
    Arc::new(db)
}

/// A small predicate grammar mixing keyable and unkeyable shapes.
fn predicate_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        // Equality on category (keyable).
        (0usize..CATEGORIES.len(), 0i64..17)
            .prop_map(|(c, n)| Expr::col_eq(1, Value::Str(format!("{}{:02}", CATEGORIES[c], n)))),
        // LIKE fragment on category (keyable).
        (0usize..CATEGORIES.len())
            .prop_map(|c| Expr::Like(Box::new(Expr::Col(1)), format!("%{}%", CATEGORIES[c]))),
        // Range on price (not keyable).
        (0.0f64..50.0).prop_map(|x| Expr::col_cmp(2, CmpOp::Lt, Value::Float(x))),
        // Range on id (not keyable).
        (0i64..ROWS as i64).prop_map(|x| Expr::col_cmp(0, CmpOp::Ge, Value::Int(x))),
        // Date between (sometimes keyable via prefixes, usually not).
        (9_000i32..9_800, 1i32..120).prop_map(|(lo, span)| Expr::Between(
            Box::new(Expr::Col(3)),
            Value::Date(lo),
            Value::Date(lo + span)
        )),
    ];
    leaf.prop_recursive(2, 6, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..3).prop_map(Expr::And),
            proptest::collection::vec(inner.clone(), 2..3).prop_map(Expr::Or),
            inner.prop_map(|e| Expr::Not(Box::new(e))),
        ]
    })
}

fn run_scan(db: Arc<Db>, predicate: Expr, mode: ExecMode) -> (Vec<Row>, bool) {
    let sim = Simulation::new(0);
    let out = Arc::new(Mutex::new(None));
    let o = Arc::clone(&out);
    sim.spawn("host", move |ctx| {
        let mut spec = SelectSpec::new("prop");
        spec.scan("items", Some(predicate));
        let r = db.execute(ctx, &spec, mode, HostLoad::IDLE).unwrap();
        *o.lock() = Some((r.rows, !r.stats.offloaded_tables.is_empty()));
    });
    sim.run().assert_quiescent();
    let result = out.lock().take().unwrap();
    result
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_matches_reference_and_offload_is_transparent(pred in predicate_strategy()) {
        let db = make_db();
        // Reference: direct filter over the in-memory dataset.
        let expected: Vec<Row> = dataset()
            .into_iter()
            .filter(|row| pred.eval_bool(row).unwrap_or(false))
            .collect();
        let (conv_rows, conv_offloaded) = run_scan(Arc::clone(&db), pred.clone(), ExecMode::Conv);
        prop_assert!(!conv_offloaded, "Conv mode must never offload");
        prop_assert_eq!(&conv_rows, &expected, "Conv scan diverged from reference");
        let (bis_rows, _maybe_offloaded) = run_scan(db, pred, ExecMode::Biscuit);
        prop_assert_eq!(&bis_rows, &expected, "Biscuit scan diverged from reference");
    }
}
