//! Full TPC-H suite: every query must return the same results in Conv and
//! Biscuit mode (the fundamental offload-correctness invariant), and the
//! offload pattern must match the paper's structure — a subset of queries
//! offloads, the rest run conventionally.

use std::sync::Arc;

use parking_lot::Mutex;

use biscuit_core::{CoreConfig, Ssd};
use biscuit_db::spec::ExecMode;
use biscuit_db::tpch::{all_queries, TpchData};
use biscuit_db::{Db, DbConfig, QueryOutput, Value};
use biscuit_fs::Fs;
use biscuit_host::{HostConfig, HostLoad};
use biscuit_sim::Simulation;
use biscuit_ssd::{SsdConfig, SsdDevice};

const SF: f64 = 0.0125;

fn make_db() -> Arc<Db> {
    let dev = Arc::new(SsdDevice::new(SsdConfig {
        logical_capacity: 1 << 30,
        ..SsdConfig::paper_default()
    }));
    let ssd = Ssd::new(Fs::format(dev), CoreConfig::paper_default());
    let mut db = Db::new(ssd, HostConfig::paper_default(), DbConfig::paper_default());
    let data = TpchData::generate(SF, 42);
    data.load_into(&mut db).unwrap();
    Arc::new(db)
}

fn run_suite(db: Arc<Db>, mode: ExecMode) -> Vec<QueryOutput> {
    let sim = Simulation::new(0);
    let out: Arc<Mutex<Vec<QueryOutput>>> = Arc::new(Mutex::new(Vec::new()));
    let o = Arc::clone(&out);
    sim.spawn("host", move |ctx| {
        for q in all_queries() {
            let r = q
                .run(&db, ctx, mode, HostLoad::IDLE)
                .unwrap_or_else(|e| panic!("Q{} failed: {e}", q.id));
            o.lock().push(r);
        }
    });
    sim.run().assert_quiescent();
    let result = out.lock().drain(..).collect();
    result
}

fn values_close(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => {
            let scale = x.abs().max(y.abs()).max(1.0);
            (x - y).abs() / scale < 1e-9
        }
        _ => a == b,
    }
}

fn rows_close(a: &[biscuit_db::Row], b: &[biscuit_db::Row]) -> bool {
    a.len() == b.len()
        && a.iter().zip(b).all(|(ra, rb)| {
            ra.len() == rb.len() && ra.iter().zip(rb).all(|(x, y)| values_close(x, y))
        })
}

#[test]
fn tpch_suite_conv_vs_biscuit() {
    let db = make_db();
    let conv = run_suite(Arc::clone(&db), ExecMode::Conv);
    let bis = run_suite(Arc::clone(&db), ExecMode::Biscuit);

    // 1. Results agree across modes (offload-correctness invariant).
    let mut failures = Vec::new();
    for ((q, c), b) in all_queries().iter().zip(&conv).zip(&bis) {
        if !rows_close(&c.rows, &b.rows) {
            failures.push(format!(
                "Q{}: conv {} rows vs biscuit {} rows\n  conv first: {:?}\n  bis first:  {:?}",
                q.id,
                c.rows.len(),
                b.rows.len(),
                c.rows.first(),
                b.rows.first()
            ));
        }
    }
    assert!(
        failures.is_empty(),
        "result mismatches:\n{}",
        failures.join("\n")
    );

    // 2. Offload pattern matches the paper's structure: ~8 queries offload,
    //    including Q14/Q6; the paper's named non-candidates never offload;
    //    Conv mode never offloads anything.
    let offloaded: Vec<usize> = all_queries()
        .iter()
        .zip(&bis)
        .filter(|(_, out)| !out.stats.offloaded_tables.is_empty())
        .map(|(q, _)| q.id)
        .collect();
    assert!(
        offloaded.contains(&14),
        "Q14 must offload, got {offloaded:?}"
    );
    assert!(offloaded.contains(&6), "Q6 must offload, got {offloaded:?}");
    for never in [1, 13, 16, 18, 21, 22] {
        assert!(
            !offloaded.contains(&never),
            "Q{never} must not offload, got {offloaded:?}"
        );
    }
    assert!(
        (6..=10).contains(&offloaded.len()),
        "expected ~8 offloaded queries, got {offloaded:?}"
    );
    assert!(conv.iter().all(|o| o.stats.offloaded_tables.is_empty()));

    // 3. Biscuit wins in total time (paper: 3.6x) and never regresses much
    //    on any single query.
    let conv_total: f64 = conv.iter().map(|o| o.stats.elapsed.as_secs_f64()).sum();
    let bis_total: f64 = bis.iter().map(|o| o.stats.elapsed.as_secs_f64()).sum();
    assert!(
        bis_total * 1.5 < conv_total,
        "total: biscuit {bis_total}s vs conv {conv_total}s"
    );
    for ((q, c), b) in all_queries().iter().zip(&conv).zip(&bis) {
        let (ct, bt) = (c.stats.elapsed.as_secs_f64(), b.stats.elapsed.as_secs_f64());
        assert!(
            bt < ct * 1.25 + 0.01,
            "Q{} regressed: biscuit {bt}s vs conv {ct}s",
            q.id
        );
    }

    // 4. Q14 is the standout (paper: 166.8x speedup, 315.4x I/O reduction).
    let idx = 13;
    let speedup = conv[idx].stats.elapsed.as_secs_f64() / bis[idx].stats.elapsed.as_secs_f64();
    let io_reduction =
        conv[idx].stats.link_bytes_to_host as f64 / bis[idx].stats.link_bytes_to_host.max(1) as f64;
    assert!(speedup > 5.0, "Q14 speedup only {speedup:.1}x");
    assert!(
        io_reduction > 10.0,
        "Q14 I/O reduction only {io_reduction:.1}x"
    );
}
