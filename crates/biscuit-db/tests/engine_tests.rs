//! End-to-end engine tests: Conv and Biscuit modes must produce identical
//! results, the planner must offload only pattern-friendly selective scans,
//! and offloading must reduce both link traffic and execution time.

use std::sync::Arc;

use parking_lot::Mutex;

use biscuit_core::{CoreConfig, Ssd};
use biscuit_db::expr::{pattern_keys, CmpOp, Expr};
use biscuit_db::spec::{AggFun, ExecMode, OrderKey, SelectSpec};
use biscuit_db::{ColumnType, Db, DbConfig, QueryOutput, Row, Schema, Value};
use biscuit_fs::Fs;
use biscuit_host::{HostConfig, HostLoad};
use biscuit_sim::Simulation;
use biscuit_ssd::{SsdConfig, SsdDevice};

fn make_db() -> Db {
    let dev = Arc::new(SsdDevice::new(SsdConfig {
        logical_capacity: 256 << 20,
        ..SsdConfig::paper_default()
    }));
    let ssd = Ssd::new(Fs::format(dev), CoreConfig::paper_default());
    Db::new(ssd, HostConfig::paper_default(), DbConfig::paper_default())
}

/// items(id INT, category STR, price FLOAT, ship DATE): `rows` rows with a
/// rare category "TARGET" planted every `stride` rows.
fn load_items(db: &mut Db, rows: usize, stride: usize) {
    let schema = Schema::new(&[
        ("id", ColumnType::Int),
        ("category", ColumnType::Str),
        ("price", ColumnType::Float),
        ("ship", ColumnType::Date),
        ("comment", ColumnType::Str),
    ]);
    let data: Vec<Row> = (0..rows)
        .map(|i| {
            let cat = if i % stride == 0 {
                "TARGETCAT"
            } else {
                "FILLER"
            };
            vec![
                Value::Int(i as i64),
                Value::Str(format!("{cat}{:03}", i % 7)),
                Value::Float((i % 100) as f64),
                Value::Date(9000 + (i % 1000) as i32),
                Value::Str(format!("comment padding text {:0>80}", i)),
            ]
        })
        .collect();
    db.create_table("items", schema, &data).unwrap();
}

fn run_query(db: Arc<Db>, spec: SelectSpec, mode: ExecMode) -> QueryOutput {
    let sim = Simulation::new(0);
    let out = Arc::new(Mutex::new(None));
    let o = Arc::clone(&out);
    sim.spawn("host", move |ctx| {
        let r = db.execute(ctx, &spec, mode, HostLoad::IDLE).unwrap();
        *o.lock() = Some(r);
    });
    sim.run().assert_quiescent();
    let result = out.lock().take().unwrap();
    result
}

fn selective_spec() -> SelectSpec {
    let mut spec = SelectSpec::new("selective");
    spec.scan(
        "items",
        Some(Expr::Like(Box::new(Expr::Col(1)), "%TARGETCAT%".into())),
    );
    spec
}

#[test]
fn conv_and_biscuit_agree_on_filter() {
    let mut db = make_db();
    load_items(&mut db, 30_000, 500);
    let db = Arc::new(db);
    let conv = run_query(Arc::clone(&db), selective_spec(), ExecMode::Conv);
    let bis = run_query(Arc::clone(&db), selective_spec(), ExecMode::Biscuit);
    assert_eq!(conv.rows.len(), 60);
    assert_eq!(conv.rows, bis.rows);
    assert!(conv.stats.offloaded_tables.is_empty());
    assert_eq!(bis.stats.offloaded_tables, vec!["items".to_string()]);
}

#[test]
fn offload_reduces_link_traffic_and_time() {
    let mut db = make_db();
    load_items(&mut db, 30_000, 500);
    let db = Arc::new(db);
    let conv = run_query(Arc::clone(&db), selective_spec(), ExecMode::Conv);
    let bis = run_query(Arc::clone(&db), selective_spec(), ExecMode::Biscuit);
    assert!(
        bis.stats.link_bytes_to_host * 4 < conv.stats.link_bytes_to_host,
        "link traffic: biscuit {} vs conv {}",
        bis.stats.link_bytes_to_host,
        conv.stats.link_bytes_to_host
    );
    assert!(
        bis.stats.elapsed.as_secs_f64() * 2.0 < conv.stats.elapsed.as_secs_f64(),
        "time: biscuit {} vs conv {}",
        bis.stats.elapsed,
        conv.stats.elapsed
    );
    assert!(bis.stats.device_pages_scanned > 0);
    assert_eq!(conv.stats.device_pages_scanned, 0);
}

#[test]
fn unfriendly_predicate_is_not_offloaded() {
    let mut db = make_db();
    load_items(&mut db, 10_000, 500);
    let db = Arc::new(db);
    // Range predicate over a wide span: no pattern keys.
    let mut spec = SelectSpec::new("range");
    spec.scan(
        "items",
        Some(Expr::col_cmp(2, CmpOp::Lt, Value::Float(3.0))),
    );
    assert!(pattern_keys(&spec.scans[0].predicate.clone().unwrap()).is_none());
    let bis = run_query(Arc::clone(&db), spec.clone(), ExecMode::Biscuit);
    assert!(bis.stats.offloaded_tables.is_empty());
    let conv = run_query(db, spec, ExecMode::Conv);
    assert_eq!(conv.rows, bis.rows);
}

#[test]
fn unselective_predicate_rejected_by_sampling() {
    let mut db = make_db();
    // Every row is TARGETCAT: the matcher passes every page.
    load_items(&mut db, 10_000, 1);
    let db = Arc::new(db);
    let bis = run_query(Arc::clone(&db), selective_spec(), ExecMode::Biscuit);
    assert!(
        bis.stats.offloaded_tables.is_empty(),
        "sampling should reject an unselective predicate"
    );
    assert_eq!(bis.rows.len(), 10_000);
}

#[test]
fn join_and_aggregate_agree_across_modes() {
    let mut db = make_db();
    load_items(&mut db, 20_000, 400);
    // categories(name STR, weight INT): joins on category string.
    let schema = Schema::new(&[("name", ColumnType::Str), ("weight", ColumnType::Int)]);
    let cats: Vec<Row> = (0..7)
        .flat_map(|i| {
            vec![
                vec![Value::Str(format!("TARGETCAT{i:03}")), Value::Int(i)],
                vec![Value::Str(format!("FILLER{i:03}")), Value::Int(100 + i)],
            ]
        })
        .collect();
    db.create_table("categories", schema, &cats).unwrap();
    let db = Arc::new(db);

    let build = || {
        let mut spec = SelectSpec::new("join-agg");
        let items = spec.scan(
            "items",
            Some(Expr::Like(Box::new(Expr::Col(1)), "%TARGETCAT%".into())),
        );
        let cats = spec.scan("categories", None);
        // items.category = categories.name
        spec.join(items, 1, cats, 0);
        // SELECT weight, COUNT(*), SUM(price) GROUP BY weight ORDER BY weight
        spec.group_by = vec![Expr::Col(6)]; // categories.weight (offset 5 + 1)
        spec.aggregates = vec![
            (AggFun::Count, Expr::Lit(Value::Int(1))),
            (AggFun::Sum, Expr::Col(2)),
        ];
        spec.order_by = vec![OrderKey {
            col: 0,
            desc: false,
        }];
        spec
    };
    let conv = run_query(Arc::clone(&db), build(), ExecMode::Conv);
    let bis = run_query(Arc::clone(&db), build(), ExecMode::Biscuit);
    assert_eq!(conv.rows, bis.rows);
    assert!(!conv.rows.is_empty());
    assert_eq!(bis.stats.offloaded_tables, vec!["items".to_string()]);
}

#[test]
fn projection_order_limit() {
    let mut db = make_db();
    load_items(&mut db, 1_000, 10);
    let db = Arc::new(db);
    let mut spec = SelectSpec::new("top");
    spec.scan("items", None);
    spec.projection = vec![Expr::Col(0), Expr::Col(2)];
    spec.order_by = vec![
        OrderKey { col: 1, desc: true },
        OrderKey {
            col: 0,
            desc: false,
        },
    ];
    spec.limit = Some(5);
    let out = run_query(db, spec, ExecMode::Conv);
    assert_eq!(out.rows.len(), 5);
    // Highest price first; ties broken by ascending id.
    assert_eq!(out.rows[0][1], Value::Float(99.0));
    assert!(out.rows[0][0].as_i64().unwrap() < out.rows[1][0].as_i64().unwrap());
}

#[test]
fn explain_reports_offload_and_join_order() {
    let mut db = make_db();
    load_items(&mut db, 30_000, 500);
    let schema = Schema::new(&[("name", ColumnType::Str), ("weight", ColumnType::Int)]);
    let cats: Vec<Row> = (0..7)
        .map(|i| vec![Value::Str(format!("TARGETCAT{i:03}")), Value::Int(i)])
        .collect();
    db.create_table("categories", schema, &cats).unwrap();
    let db = Arc::new(db);
    let sim = Simulation::new(0);
    let out = Arc::new(Mutex::new(None));
    let o = Arc::clone(&out);
    sim.spawn("host", move |ctx| {
        let mut spec = SelectSpec::new("x");
        let items = spec.scan(
            "items",
            Some(Expr::Like(Box::new(Expr::Col(1)), "%TARGETCAT%".into())),
        );
        let cats = spec.scan("categories", None);
        spec.join(items, 1, cats, 0);
        let plan = db
            .explain(ctx, &spec, ExecMode::Biscuit, HostLoad::IDLE)
            .unwrap();
        *o.lock() = Some(plan);
    });
    sim.run().assert_quiescent();
    let plan = out.lock().take().unwrap();
    assert!(plan.scans[0].offloaded, "{plan:?}");
    assert!(plan.scans[0].est_selectivity < 0.01, "{plan:?}");
    assert!(plan.scans[0].keys[0].contains("TARGETCAT"), "{plan:?}");
    assert!(!plan.scans[1].offloaded);
    // NDP-filtered table leads the join order.
    assert_eq!(plan.join_order[0], "items");
}

#[test]
fn aggregate_pushdown_extension_matches_host_aggregation() {
    use biscuit_db::spec::AggFun;
    // Same data, same query, three engines: Conv, Biscuit (filter-only),
    // Biscuit with on-device aggregation. All must produce the same sums.
    let dev = || {
        Arc::new(SsdDevice::new(SsdConfig {
            logical_capacity: 256 << 20,
            ..SsdConfig::paper_default()
        }))
    };
    let build = |pushdown: bool| {
        let ssd = Ssd::new(Fs::format(dev()), CoreConfig::paper_default());
        let mut db = Db::new(
            ssd,
            HostConfig::paper_default(),
            DbConfig {
                aggregate_pushdown: pushdown,
                ..DbConfig::paper_default()
            },
        );
        load_items_into(&mut db);
        Arc::new(db)
    };
    fn load_items_into(db: &mut Db) {
        let schema = Schema::new(&[
            ("id", ColumnType::Int),
            ("category", ColumnType::Str),
            ("price", ColumnType::Float),
            ("ship", ColumnType::Date),
            ("comment", ColumnType::Str),
        ]);
        let data: Vec<Row> = (0..30_000usize)
            .map(|i| {
                let cat = if i % 500 == 0 { "TARGETCAT" } else { "FILLER" };
                vec![
                    Value::Int(i as i64),
                    Value::Str(format!("{cat}{:03}", i % 7)),
                    Value::Float((i % 100) as f64),
                    Value::Date(9000 + (i % 1000) as i32),
                    Value::Str(format!("comment padding text {i:0>80}")),
                ]
            })
            .collect();
        db.create_table("items", schema, &data).unwrap();
    }
    let spec = || {
        let mut spec = SelectSpec::new("agg");
        spec.scan(
            "items",
            Some(Expr::Like(Box::new(Expr::Col(1)), "%TARGETCAT%".into())),
        );
        spec.aggregates = vec![
            (AggFun::Sum, Expr::Col(2)),
            (AggFun::Count, Expr::Lit(Value::Int(1))),
            (AggFun::Min, Expr::Col(0)),
            (AggFun::Max, Expr::Col(0)),
        ];
        spec
    };
    let conv = run_query(build(false), spec(), ExecMode::Conv);
    let plain = run_query(build(false), spec(), ExecMode::Biscuit);
    let pushed = run_query(build(true), spec(), ExecMode::Biscuit);
    assert_eq!(conv.rows, plain.rows);
    assert_eq!(conv.rows, pushed.rows);
    assert_eq!(pushed.stats.offloaded_tables, vec!["items".to_string()]);
    // On-device aggregation moves strictly fewer bytes over the link than
    // filter-only offload (one row vs all qualifying rows).
    assert!(
        pushed.stats.link_bytes_to_host < plain.stats.link_bytes_to_host,
        "pushdown {} vs filter-only {}",
        pushed.stats.link_bytes_to_host,
        plain.stats.link_bytes_to_host
    );
}

/// With the panic budget larger than the restart budget the scan SSDlet
/// fails terminally; the engine must degrade to a host-side scan and still
/// return byte-identical rows.
#[test]
fn ssdlet_failure_falls_back_to_host_scan() {
    use biscuit_sim::fault::{FaultConfig, FaultSite};
    use biscuit_sim::FaultPlan;

    let mut db = make_db();
    load_items(&mut db, 30_000, 500);
    let db = Arc::new(db);
    let clean = run_query(Arc::clone(&db), selective_spec(), ExecMode::Biscuit);

    let mut db = make_db();
    load_items(&mut db, 30_000, 500);
    let plan = FaultPlan::seeded(
        7,
        FaultConfig {
            ssdlet_panics: 2,
            ssdlet_stalls: 0,
            ssdlet_max_restarts: 1,
            ..FaultConfig::default()
        },
    );
    db.ssd().attach_fault_plan(&plan);
    let db = Arc::new(db);
    let faulty = run_query(Arc::clone(&db), selective_spec(), ExecMode::Biscuit);

    assert_eq!(clean.rows, faulty.rows);
    assert!(plan.failed_total() >= 1, "restart budget must be exhausted");
    assert!(
        plan.recovered_at(FaultSite::Ssdlet) >= 1,
        "host fallback must be recorded as a recovery"
    );
}

/// A panic within the restart budget recovers in place: the restarted
/// SSDlet completes the offload and no host fallback happens.
#[test]
fn ssdlet_restart_recovers_without_fallback() {
    use biscuit_sim::fault::FaultConfig;
    use biscuit_sim::FaultPlan;

    let mut db = make_db();
    load_items(&mut db, 30_000, 500);
    let db = Arc::new(db);
    let clean = run_query(Arc::clone(&db), selective_spec(), ExecMode::Biscuit);

    let mut db = make_db();
    load_items(&mut db, 30_000, 500);
    let plan = FaultPlan::seeded(
        7,
        FaultConfig {
            ssdlet_panics: 1,
            ssdlet_stalls: 0,
            ssdlet_max_restarts: 2,
            ..FaultConfig::default()
        },
    );
    db.ssd().attach_fault_plan(&plan);
    let db = Arc::new(db);
    let faulty = run_query(Arc::clone(&db), selective_spec(), ExecMode::Biscuit);

    assert_eq!(clean.rows, faulty.rows);
    assert_eq!(plan.failed_total(), 0, "restart must succeed");
    assert!(plan.recovered_total() >= 1, "restart must be recorded");
    assert_eq!(
        faulty.stats.offloaded_tables,
        vec!["items".to_string()],
        "offload must complete on-device after the restart"
    );
}

/// An aggressively small host timeout abandons a healthy offload mid-query;
/// the conventional fallback must still produce identical rows.
#[test]
fn host_timeout_falls_back_to_host_scan() {
    use biscuit_sim::fault::{FaultConfig, FaultSite};
    use biscuit_sim::time::SimDuration;
    use biscuit_sim::FaultPlan;

    let mut db = make_db();
    load_items(&mut db, 30_000, 500);
    let db = Arc::new(db);
    let clean = run_query(Arc::clone(&db), selective_spec(), ExecMode::Biscuit);

    let mut db = make_db();
    load_items(&mut db, 30_000, 500);
    let plan = FaultPlan::seeded(
        7,
        FaultConfig {
            host_timeout: Some(SimDuration::from_nanos(50)),
            ..FaultConfig::default()
        },
    );
    db.ssd().attach_fault_plan(&plan);
    let db = Arc::new(db);
    let faulty = run_query(Arc::clone(&db), selective_spec(), ExecMode::Biscuit);

    assert_eq!(clean.rows, faulty.rows);
    assert!(
        plan.failed_total() >= 1,
        "the timed-out request must be recorded as failed"
    );
    assert!(
        plan.recovered_at(FaultSite::Ssdlet) >= 1,
        "host fallback must be recorded as a recovery"
    );
}
