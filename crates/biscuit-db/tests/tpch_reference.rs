//! Ground-truth tests: selected TPC-H queries are recomputed directly over
//! the generated in-memory rows and compared against the engine's output —
//! catching errors the Conv-vs-Biscuit equality test cannot (both modes
//! sharing one wrong executor).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use biscuit_core::{CoreConfig, Ssd};
use biscuit_db::spec::ExecMode;
use biscuit_db::tpch::schema::{l, o, p};
use biscuit_db::tpch::{all_queries, TpchData};
use biscuit_db::{Db, DbConfig, QueryOutput, Value};
use biscuit_fs::Fs;
use biscuit_host::{HostConfig, HostLoad};
use biscuit_sim::Simulation;
use biscuit_ssd::{SsdConfig, SsdDevice};

const SF: f64 = 0.01;

fn setup() -> (Arc<Db>, Arc<TpchData>) {
    let dev = Arc::new(SsdDevice::new(SsdConfig {
        logical_capacity: 1 << 30,
        ..SsdConfig::paper_default()
    }));
    let ssd = Ssd::new(Fs::format(dev), CoreConfig::paper_default());
    let mut db = Db::new(ssd, HostConfig::paper_default(), DbConfig::paper_default());
    let data = TpchData::generate(SF, 42);
    data.load_into(&mut db).unwrap();
    (Arc::new(db), Arc::new(data))
}

fn run_query(db: Arc<Db>, id: usize, mode: ExecMode) -> QueryOutput {
    let sim = Simulation::new(0);
    let out = Arc::new(Mutex::new(None));
    let o2 = Arc::clone(&out);
    sim.spawn("host", move |ctx| {
        let q = all_queries().into_iter().nth(id - 1).unwrap();
        *o2.lock() = Some(q.run(&db, ctx, mode, HostLoad::IDLE).unwrap());
    });
    sim.run().assert_quiescent();
    let result = out.lock().take().unwrap();
    result
}

fn close(a: f64, b: f64) -> bool {
    (a - b).abs() / a.abs().max(b.abs()).max(1.0) < 1e-9
}

#[test]
fn q1_matches_direct_computation() {
    let (db, data) = setup();
    let cutoff = biscuit_db::value::parse_date("1998-09-02").unwrap();
    // Direct recomputation over the generated rows.
    let mut groups: HashMap<(String, String), (f64, f64, i64)> = HashMap::new();
    for row in &data.lineitem {
        let Value::Date(ship) = row[l::SHIPDATE] else {
            panic!()
        };
        if ship > cutoff {
            continue;
        }
        let key = (
            row[l::RETURNFLAG].as_str().unwrap().to_owned(),
            row[l::LINESTATUS].as_str().unwrap().to_owned(),
        );
        let e = groups.entry(key).or_insert((0.0, 0.0, 0));
        e.0 += row[l::QUANTITY].as_f64().unwrap();
        e.1 += row[l::EXTENDEDPRICE].as_f64().unwrap();
        e.2 += 1;
    }
    let out = run_query(db, 1, ExecMode::Conv);
    assert_eq!(out.rows.len(), groups.len());
    for row in &out.rows {
        let key = (
            row[0].as_str().unwrap().to_owned(),
            row[1].as_str().unwrap().to_owned(),
        );
        let (sum_qty, sum_price, count) = groups[&key];
        assert!(
            close(row[2].as_f64().unwrap(), sum_qty),
            "sum_qty for {key:?}"
        );
        assert!(
            close(row[3].as_f64().unwrap(), sum_price),
            "sum_base_price for {key:?}"
        );
        assert_eq!(row[9].as_i64().unwrap(), count, "count for {key:?}");
    }
}

#[test]
fn q6_matches_direct_computation() {
    let (db, data) = setup();
    let lo = biscuit_db::value::parse_date("1994-01-01").unwrap();
    let hi = biscuit_db::value::parse_date("1994-12-31").unwrap();
    let expected: f64 = data
        .lineitem
        .iter()
        .filter(|row| {
            let Value::Date(ship) = row[l::SHIPDATE] else {
                panic!()
            };
            let disc = row[l::DISCOUNT].as_f64().unwrap();
            let qty = row[l::QUANTITY].as_f64().unwrap();
            (lo..=hi).contains(&ship) && (0.05..=0.07).contains(&disc) && qty < 24.0
        })
        .map(|row| row[l::EXTENDEDPRICE].as_f64().unwrap() * row[l::DISCOUNT].as_f64().unwrap())
        .sum();
    for mode in [ExecMode::Conv, ExecMode::Biscuit] {
        let out = run_query(Arc::clone(&db), 6, mode);
        assert_eq!(out.rows.len(), 1);
        let got = out.rows[0][0].as_f64().unwrap();
        assert!(
            close(got, expected),
            "{mode:?}: Q6 revenue {got} vs reference {expected}"
        );
    }
}

#[test]
fn q14_matches_direct_computation() {
    let (db, data) = setup();
    let lo = biscuit_db::value::parse_date("1995-09-01").unwrap();
    let hi = biscuit_db::value::parse_date("1995-09-30").unwrap();
    let part_type: HashMap<i64, String> = data
        .part
        .iter()
        .map(|r| {
            (
                r[p::PARTKEY].as_i64().unwrap(),
                r[p::TYPE].as_str().unwrap().to_owned(),
            )
        })
        .collect();
    let (mut promo, mut total) = (0.0f64, 0.0f64);
    for row in &data.lineitem {
        let Value::Date(ship) = row[l::SHIPDATE] else {
            panic!()
        };
        if !(lo..=hi).contains(&ship) {
            continue;
        }
        let revenue =
            row[l::EXTENDEDPRICE].as_f64().unwrap() * (1.0 - row[l::DISCOUNT].as_f64().unwrap());
        total += revenue;
        let ty = &part_type[&row[l::PARTKEY].as_i64().unwrap()];
        if ty.starts_with("PROMO") {
            promo += revenue;
        }
    }
    let expected = 100.0 * promo / total;
    for mode in [ExecMode::Conv, ExecMode::Biscuit] {
        let out = run_query(Arc::clone(&db), 14, mode);
        let got = out.rows[0][0].as_f64().unwrap();
        assert!(
            (got - expected).abs() < 1e-6,
            "{mode:?}: Q14 promo% {got} vs reference {expected}"
        );
    }
}

#[test]
fn q4_matches_direct_computation() {
    let (db, data) = setup();
    let lo = biscuit_db::value::parse_date("1993-07-01").unwrap();
    let hi = biscuit_db::value::parse_date("1993-09-30").unwrap();
    // Orders in the quarter with >=1 late-commit lineitem, counted per
    // priority.
    let mut late_orders: std::collections::HashSet<i64> = Default::default();
    for row in &data.lineitem {
        let (Value::Date(commit), Value::Date(receipt)) =
            (&row[l::COMMITDATE], &row[l::RECEIPTDATE])
        else {
            panic!()
        };
        if commit < receipt {
            late_orders.insert(row[l::ORDERKEY].as_i64().unwrap());
        }
    }
    let mut expected: HashMap<String, i64> = HashMap::new();
    for row in &data.orders {
        let Value::Date(d) = row[o::ORDERDATE] else {
            panic!()
        };
        if (lo..=hi).contains(&d) && late_orders.contains(&row[o::ORDERKEY].as_i64().unwrap()) {
            *expected
                .entry(row[o::ORDERPRIORITY].as_str().unwrap().to_owned())
                .or_insert(0) += 1;
        }
    }
    let out = run_query(db, 4, ExecMode::Conv);
    assert_eq!(out.rows.len(), expected.len());
    for row in &out.rows {
        let prio = row[0].as_str().unwrap();
        assert_eq!(row[1].as_i64().unwrap(), expected[prio], "count for {prio}");
    }
}

#[test]
fn q13_matches_direct_computation() {
    let (db, data) = setup();
    // Orders whose comment does not match %special%requests%, per customer;
    // then the histogram of counts.
    let mut per_customer: HashMap<i64, i64> = data
        .customer
        .iter()
        .map(|r| (r[0].as_i64().unwrap(), 0))
        .collect();
    for row in &data.orders {
        let comment = row[o::COMMENT].as_str().unwrap();
        let is_special = comment
            .find("special")
            .map(|i| comment[i..].contains("requests"))
            .unwrap_or(false);
        if !is_special {
            if let Some(c) = per_customer.get_mut(&row[o::CUSTKEY].as_i64().unwrap()) {
                *c += 1;
            }
        }
    }
    let mut expected: HashMap<i64, i64> = HashMap::new();
    for &count in per_customer.values() {
        *expected.entry(count).or_insert(0) += 1;
    }
    let out = run_query(db, 13, ExecMode::Conv);
    assert_eq!(out.rows.len(), expected.len());
    for row in &out.rows {
        let c_count = row[0].as_i64().unwrap();
        assert_eq!(
            row[1].as_i64().unwrap(),
            expected[&c_count],
            "custdist for count {c_count}"
        );
    }
}
