//! # Biscuit — near-data processing for simulated NVMe SSDs
//!
//! A comprehensive Rust reproduction of *Biscuit: A Framework for Near-Data
//! Processing of Big Data Workloads* (ISCA 2016). The framework lets you
//! write dataflow applications whose tasks ("SSDlets") run inside a
//! simulated solid-state drive, connected to host code through typed,
//! data-ordered ports — and reproduces every table and figure of the
//! paper's evaluation on a calibrated discrete-event model of the paper's
//! hardware.
//!
//! This crate is a facade: it re-exports the workspace's layers.
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`sim`] | `biscuit-sim` | deterministic DES kernel: fibers, virtual time, queues, resources, power |
//! | [`proto`] | `biscuit-proto` | `Packet`, `Wire` codec, PCIe/NVMe link model |
//! | [`ssd`] | `biscuit-ssd` | NAND array, FTL with GC, pattern-matcher IP, timed datapath |
//! | [`fs`] | `biscuit-fs` | the extent filesystem Biscuit mandates for device data |
//! | [`core`] | `biscuit-core` | **the framework**: SSDlets, modules, applications, ports |
//! | [`host`] | `biscuit-host` | the Conv baseline: host CPU model, pread path, Boyer–Moore |
//! | [`db`] | `biscuit-db` | mini relational engine with NDP offload + TPC-H |
//! | [`apps`] | `biscuit-apps` | wordcount, string search, pointer chasing |
//!
//! ## Quickstart
//!
//! ```
//! use biscuit::core::module::{ModuleBuilder, SsdletSpec};
//! use biscuit::core::task::{Ssdlet, TaskCtx};
//! use biscuit::core::{Application, CoreConfig, Ssd};
//! use biscuit::fs::Fs;
//! use biscuit::sim::Simulation;
//! use biscuit::ssd::{SsdConfig, SsdDevice};
//! use std::sync::Arc;
//!
//! struct Echo;
//! impl Ssdlet for Echo {
//!     fn run(&mut self, ctx: &mut TaskCtx<'_>) {
//!         while let Some(v) = ctx.recv::<u64>(0).unwrap() {
//!             ctx.send(0, v + 1).unwrap();
//!         }
//!     }
//! }
//!
//! let dev = Arc::new(SsdDevice::new(SsdConfig {
//!     logical_capacity: 16 << 20,
//!     ..SsdConfig::paper_default()
//! }));
//! let ssd = Ssd::new(Fs::format(dev), CoreConfig::paper_default());
//! let sim = Simulation::new(0);
//! let s = ssd.clone();
//! sim.spawn("host", move |ctx| {
//!     let module = ModuleBuilder::new("demo")
//!         .register("idEcho", SsdletSpec::new().input::<u64>().output::<u64>(),
//!                   |_| Ok(Box::new(Echo)))
//!         .build();
//!     let mid = s.load_module(ctx, module).unwrap();
//!     let app = Application::new(&s, "demo");
//!     let echo = app.ssdlet(mid, "idEcho").unwrap();
//!     let tx = app.connect_from::<u64>(echo.input(0)).unwrap();
//!     let rx = app.connect_to::<u64>(echo.out(0)).unwrap();
//!     app.start(ctx).unwrap();
//!     tx.put(ctx, 41).unwrap();
//!     tx.close(ctx);
//!     assert_eq!(rx.get(ctx), Some(42));
//!     app.join(ctx);
//! });
//! sim.run().assert_quiescent();
//! ```

#![warn(missing_docs)]

pub use biscuit_apps as apps;
pub use biscuit_core as core;
pub use biscuit_db as db;
pub use biscuit_fs as fs;
pub use biscuit_host as host;
pub use biscuit_proto as proto;
pub use biscuit_sim as sim;
pub use biscuit_ssd as ssd;
